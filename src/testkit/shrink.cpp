#include "src/testkit/shrink.hpp"

#include <algorithm>
#include <vector>

namespace uvs::testkit {

namespace {

/// Keeps a transformed spec self-consistent (sampler guarantees).
void Normalize(ScenarioSpec& spec) {
  spec.procs = std::max(spec.procs, 1);
  spec.procs_per_node = std::clamp(spec.procs_per_node, 1, spec.procs);
  spec.steps = std::max(spec.steps, 1);
  spec.bytes_per_rank = std::max<Bytes>(spec.bytes_per_rank, 1_MiB);
  if (spec.failure == FailureMode::kNone) {
    spec.failed_node = 0;
  } else {
    spec.failed_node = std::clamp(spec.failed_node, 0, spec.Nodes() - 1);
  }
  if (spec.failure != FailureMode::kPlan) spec.fault_plan.clear();
  if (spec.failure == FailureMode::kPlan && spec.fault_plan.empty())
    spec.failure = FailureMode::kNone;
  // EC only exists on the univistor path and needs k+m distinct OSTs; a
  // transform that breaks either drops erasure coding entirely.
  if (spec.system != SystemKind::kUniviStor) spec.ec_k = 0;
  if (spec.ec_k > 0 && spec.ec_k + spec.ec_m > spec.osts) spec.ec_k = 0;
  if (spec.ec_k == 0) {
    spec.ec_m = 0;
    spec.scrub = false;
  }
  spec.jobs = std::max(spec.jobs, 1);
  if (spec.jobs == 1) {
    // Single-job specs keep the (unprinted) cluster defaults so shrunk
    // strings stay canonical.
    spec.arrival = 0.0;
    spec.csched = 2;
  }
}

using Transform = void (*)(ScenarioSpec&);

// Ordered big-win-first: structural reductions before toggle resets.
constexpr Transform kTransforms[] = {
    [](ScenarioSpec& s) { s.jobs /= 2; },
    [](ScenarioSpec& s) { s.procs /= 2; },
    [](ScenarioSpec& s) { s.steps /= 2; },
    [](ScenarioSpec& s) { s.bytes_per_rank /= 2; },
    [](ScenarioSpec& s) {
      // One simplification step down the workload ladder.
      if (s.workload == WorkloadKind::kWorkflow) s.workload = WorkloadKind::kVpic;
      else if (s.workload == WorkloadKind::kVpic) s.workload = WorkloadKind::kMicroReadBack;
      else if (s.workload == WorkloadKind::kMicroReadBack) s.workload = WorkloadKind::kMicro;
    },
    [](ScenarioSpec& s) {
      // Drop the last fault-plan event; an emptied plan becomes kNone via
      // Normalize. Plans print events ';'-joined, so this is pure string
      // surgery — no reparse needed.
      const std::size_t semi = s.fault_plan.rfind(';');
      if (semi == std::string::npos) s.fault_plan.clear();
      else s.fault_plan.resize(semi);
    },
    [](ScenarioSpec& s) { s.failure = FailureMode::kNone; },
    [](ScenarioSpec& s) { s.ec_k = 0; },  // Normalize zeroes ec_m + scrub too
    [](ScenarioSpec& s) { s.scrub = false; },
    [](ScenarioSpec& s) { s.arrival = 0.0; },
    [](ScenarioSpec& s) { s.recovery = false; },
    [](ScenarioSpec& s) { s.compute_time = 0.0; },
    [](ScenarioSpec& s) { s.has_ssd = false; },
    [](ScenarioSpec& s) { s.bb_nodes = 2; },
    [](ScenarioSpec& s) { s.osts = 4; },
    // Toggle resets toward univistor::Config defaults, one at a time so
    // only bug-irrelevant toggles are normalized away.
    [](ScenarioSpec& s) { s.ia = true; },
    [](ScenarioSpec& s) { s.coc = true; },
    [](ScenarioSpec& s) { s.adpt = true; },
    [](ScenarioSpec& s) { s.la = true; },
    [](ScenarioSpec& s) { s.replicate_volatile = false; },
    [](ScenarioSpec& s) { s.promote_hot_reads = false; },
    [](ScenarioSpec& s) { s.flush_on_close = true; },
    [](ScenarioSpec& s) { s.first_layer = 0; },
    [](ScenarioSpec& s) { s.chunk_size = 4_MiB; },
    [](ScenarioSpec& s) { s.metadata_range_size = 2_MiB; },
};

}  // namespace

ShrinkResult Shrink(const ScenarioSpec& failing, const FailurePredicate& still_fails,
                    int max_attempts) {
  ShrinkResult result{failing, 0};
  bool progress = true;
  while (progress && result.attempts < max_attempts) {
    progress = false;
    for (const Transform transform : kTransforms) {
      if (result.attempts >= max_attempts) break;
      ScenarioSpec candidate = result.spec;
      transform(candidate);
      Normalize(candidate);
      if (candidate == result.spec) continue;  // transform was a no-op here
      ++result.attempts;
      if (still_fails(candidate)) {
        result.spec = candidate;
        progress = true;
      }
    }
  }
  return result;
}

}  // namespace uvs::testkit
