#include "src/testkit/invariants.hpp"

#include <sstream>

#include "src/hw/params.hpp"
#include "src/placement/dhp.hpp"
#include "src/placement/virtual_address.hpp"

namespace uvs::testkit {

std::string InvariantReport::ToString() const {
  if (ok()) return "all invariants hold";
  std::ostringstream out;
  for (const auto& v : violations) out << "[" << v.invariant << "] " << v.detail << "\n";
  return out.str();
}

void CheckRecordCoverage(const std::vector<meta::MetadataRecord>& records, Bytes expected_bytes,
                         const std::string& label, InvariantReport& report) {
  Bytes covered = 0;
  Bytes prev_end = 0;
  bool first = true;
  for (const auto& rec : records) {
    if (rec.len == 0) {
      report.Add("metadata-coverage", label + ": zero-length record at offset " +
                                          std::to_string(rec.offset));
      continue;
    }
    if (!first && rec.offset < prev_end) {
      report.Add("metadata-coverage",
                 label + ": records overlap at offset " + std::to_string(rec.offset) +
                     " (previous record ends at " + std::to_string(prev_end) + ")");
    }
    prev_end = rec.end();
    first = false;
    covered += rec.len;
  }
  if (covered != expected_bytes) {
    report.Add("metadata-coverage", label + ": records cover " + std::to_string(covered) +
                                        " bytes, expected " + std::to_string(expected_bytes));
  }
}

void CheckPool(const sim::FairSharePool& pool, InvariantReport& report) {
  if (pool.active_flows() != 0) {
    report.Add("pool-quiescence", "pool '" + pool.name() + "' still has " +
                                      std::to_string(pool.active_flows()) +
                                      " active flows after the simulation drained");
  }
  // A flow may complete up to kResidualEpsilonBytes (0.5) of virtual work
  // early but is credited its full byte count, so allow that per completed
  // transfer, plus a relative term for double accumulation error.
  const double served = static_cast<double>(pool.total_bytes());
  const double budget = pool.peak_capacity() * pool.busy_time() +
                        0.5 * static_cast<double>(pool.completed_transfers()) +
                        1e-6 * served + 1.0;
  if (served > budget) {
    std::ostringstream out;
    out << "pool '" << pool.name() << "' delivered " << served << " bytes but peak_capacity("
        << pool.peak_capacity() << ") * busy_time(" << pool.busy_time() << ") only allows "
        << budget;
    report.Add("pool-conservation", out.str());
  }
}

namespace {

/// VA round-trip (Eq. 1) for every record of one file.
void CheckVaRoundTrips(const univistor::UniviStor& system, storage::FileId fid,
                       const std::vector<meta::MetadataRecord>& records, const std::string& label,
                       InvariantReport& report) {
  for (const auto& rec : records) {
    const placement::DhpWriterChain* chain = system.FindChain(fid, rec.producer);
    if (chain == nullptr) {
      report.Add("va-roundtrip", label + ": record at offset " + std::to_string(rec.offset) +
                                     " names producer " + std::to_string(rec.producer) +
                                     " which has no DHP chain");
      continue;
    }
    const auto decoded = chain->codec().Decode(rec.va);
    if (!decoded.ok()) {
      report.Add("va-roundtrip", label + ": VA " + std::to_string(rec.va) +
                                     " does not decode: " + decoded.status().ToString());
      continue;
    }
    const auto reencoded = chain->codec().Encode(decoded->layer, decoded->physical);
    if (!reencoded.ok() || *reencoded != rec.va) {
      report.Add("va-roundtrip",
                 label + ": VA " + std::to_string(rec.va) + " decodes to (layer " +
                     std::to_string(static_cast<int>(decoded->layer)) + ", physical " +
                     std::to_string(decoded->physical) + ") which re-encodes to " +
                     (reencoded.ok() ? std::to_string(*reencoded) : reencoded.status().ToString()));
    }
  }
}

/// Range-partition ownership: each partition only holds records of ranges
/// it owns, no record crosses a range boundary, and the partitions union
/// to the global record set.
void CheckPartitioning(const meta::DistributedMetadataService& metadata, storage::FileId fid,
                       Bytes logical_size, std::size_t global_records, Bytes global_bytes,
                       const std::string& label, InvariantReport& report) {
  const kv::RangePartitioner& part = metadata.partitioner();
  std::size_t union_records = 0;
  Bytes union_bytes = 0;
  for (int server = 0; server < metadata.server_count(); ++server) {
    for (const auto& rec : metadata.QueryPartition(server, fid, 0, logical_size)) {
      if (rec.len == 0) continue;
      if (part.ServerOf(rec.offset) != server) {
        report.Add("metadata-partitioning",
                   label + ": server " + std::to_string(server) + " holds a record at offset " +
                       std::to_string(rec.offset) + " owned by server " +
                       std::to_string(part.ServerOf(rec.offset)));
      }
      if (part.RangeOf(rec.offset) != part.RangeOf(rec.end() - 1)) {
        report.Add("metadata-partitioning",
                   label + ": record [" + std::to_string(rec.offset) + ", " +
                       std::to_string(rec.end()) + ") spans a range boundary (range size " +
                       std::to_string(part.range_size()) + ")");
      }
      ++union_records;
      union_bytes += rec.len;
    }
  }
  if (union_records != global_records || union_bytes != global_bytes) {
    report.Add("metadata-partitioning",
               label + ": partitions union to " + std::to_string(union_records) + " records / " +
                   std::to_string(union_bytes) + " bytes, global query sees " +
                   std::to_string(global_records) + " records / " + std::to_string(global_bytes) +
                   " bytes");
  }
}

}  // namespace

void CheckUniviStor(const univistor::UniviStor& system, InvariantReport& report) {
  for (int f = 0; f < system.file_count(); ++f) {
    const auto fid = static_cast<storage::FileId>(f);
    const std::string label = "file '" + system.FileName(fid) + "'";
    const Bytes written = system.BytesWritten(fid);
    const Bytes logical_size = system.LogicalSize(fid);

    // Byte conservation across the DHP cascade: every byte accepted by
    // Write() was placed on exactly one layer (flush copies to the PFS but
    // never evicts, so cached totals are monotone).
    Bytes placed = 0;
    for (int l = 0; l < hw::kLayerCount; ++l)
      placed += system.CachedOn(fid, static_cast<hw::Layer>(l));
    if (placed != written) {
      report.Add("byte-conservation", label + ": " + std::to_string(written) +
                                          " bytes written but " + std::to_string(placed) +
                                          " bytes placed across the DHP layers");
    }

    const auto records = system.metadata().Query(fid, 0, logical_size);
    CheckRecordCoverage(records, written, label, report);
    CheckVaRoundTrips(system, fid, records, label, report);

    Bytes global_bytes = 0;
    for (const auto& rec : records) global_bytes += rec.len;
    CheckPartitioning(system.metadata(), fid, logical_size, records.size(), global_bytes, label,
                      report);
  }
}

void CheckPoolConservation(workload::Scenario& scenario, InvariantReport& report) {
  hw::Cluster& cluster = scenario.cluster();
  for (int n = 0; n < cluster.node_count(); ++n) {
    hw::Node& node = cluster.node(n);
    CheckPool(node.nic_tx(), report);
    CheckPool(node.nic_rx(), report);
    for (int s = 0; s < node.sockets(); ++s) CheckPool(node.socket(s).dram(), report);
    if (node.has_local_ssd()) CheckPool(node.local_ssd(), report);
    sched::NodeScheduler& sched = scenario.runtime().Scheduler(n);
    for (int p = 0; p < sched.process_count(); ++p) CheckPool(sched.cpu(p), report);
  }
  for (int b = 0; b < cluster.burst_buffer().node_count(); ++b)
    CheckPool(cluster.burst_buffer().pool(b), report);
  for (int o = 0; o < cluster.pfs().ost_count(); ++o) CheckPool(cluster.pfs().ost(o), report);
}

Bytes ExpectedLostBytes(const univistor::UniviStor& system, vmpi::Runtime& runtime) {
  Bytes lost = 0;
  for (int f = 0; f < system.file_count(); ++f) {
    const auto fid = static_cast<storage::FileId>(f);
    const bool has_pfs = system.HasPfsCopy(fid);
    for (const auto& rec : system.metadata().Query(fid, 0, system.LogicalSize(fid))) {
      const placement::DhpWriterChain* chain = system.FindChain(fid, rec.producer);
      if (chain == nullptr) continue;
      const auto decoded = chain->codec().Decode(rec.va);
      if (!decoded.ok()) continue;
      if (decoded->layer != hw::Layer::kDram && decoded->layer != hw::Layer::kNodeLocalSsd)
        continue;
      const auto program = univistor::ProducerProgram(rec.producer);
      const int rank = univistor::ProducerRank(rec.producer);
      if (!system.NodeFailed(runtime.Rank(program, rank).node)) continue;
      if (system.config().replicate_volatile &&
          system.ReplicaCovers(fid, rec.producer, decoded->layer, decoded->physical, rec.len))
        continue;
      if (has_pfs &&
          system.DurableCovers(fid, rec.producer, decoded->layer, decoded->physical, rec.len))
        continue;
      lost += rec.len;
    }
  }
  return lost;
}

void CheckQuiescence(const sim::Engine& engine, InvariantReport& report) {
  if (engine.live_processes() == 0) return;
  std::ostringstream out;
  out << engine.live_processes() << " processes stranded after the event queue drained:";
  const auto names = engine.UnfinishedProcessNames();
  const std::size_t shown = names.size() < 8 ? names.size() : 8;
  for (std::size_t i = 0; i < shown; ++i) out << " '" << names[i] << "'";
  if (names.size() > shown) out << " (+" << names.size() - shown << " more)";
  report.Add("quiescence", out.str());
}

void CheckErasure(const storage::Pfs& pfs, InvariantReport& report) {
  const auto verify = pfs.VerifyParity();
  if (verify.torn > 0) {
    std::ostringstream out;
    out << verify.torn << " of " << verify.stripes_checked
        << " stripes have parity snapshots disagreeing with applied data versions "
           "after quiescence";
    report.Add("ec-parity-consistency", out.str());
  }
  if (!pfs.ec_redundancy_exceeded() && pfs.ec_lost_bytes() > 0) {
    std::ostringstream out;
    out << pfs.ec_lost_bytes()
        << " bytes counted lost although no stripe ever exceeded its parity budget "
           "(failed+latent shards <= m throughout)";
    report.Add("ec-redundancy-bound", out.str());
  }
}

}  // namespace uvs::testkit
