#include "src/testkit/batch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "src/sim/worker_pool.hpp"

namespace uvs::testkit {

namespace {

using Clock = std::chrono::steady_clock;

void Fill(SeedRun& run, RunOutcome outcome) {
  run.report = std::move(outcome.report);
  run.file_sizes = std::move(outcome.file_sizes);
  run.sim_time = outcome.sim_time;
  run.spans_dropped = outcome.spans_dropped;
  run.ok = run.report.ok();
  run.ran = true;
}

}  // namespace

BatchResult RunSeedBatch(std::uint64_t base_seed, std::uint64_t n, const BatchOptions& options) {
  BatchResult result;
  result.runs.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) result.runs[i].seed = base_seed + i;
  const bool bounded = options.time_budget > 0;
  const Clock::time_point deadline =
      bounded ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(options.time_budget))
              : Clock::time_point::max();

  const int requested =
      options.workers == 0 ? sim::WorkerPool::HardwareThreads() : options.workers;
  if (requested <= 1 || n <= 1) {
    // Classic serial sweep: nothing beyond a failure or the deadline is
    // ever sampled.
    for (std::uint64_t i = 0; i < n; ++i) {
      if (bounded && Clock::now() >= deadline) {
        result.deadline_hit = true;
        break;
      }
      SeedRun& run = result.runs[i];
      run.spec = SampleScenario(run.seed);
      Fill(run, RunScenario(run.spec, options.run));
      if (!run.ok && options.stop_on_failure) break;
    }
    return result;
  }

  // Lowest failing seed seen so far; seeds above it are not worth starting
  // (their results would never be reported) but seeds below it must all
  // run, which dispatch order guarantees: a worker claiming seed i has
  // seen every seed < i dispatched already.
  std::atomic<std::uint64_t> first_fail{n};
  std::atomic<bool> deadline_hit{false};
  sim::WorkerPool pool(std::min<std::uint64_t>(static_cast<std::uint64_t>(requested), n));
  sim::ParallelFor(pool, static_cast<std::size_t>(n), [&](std::size_t i) {
    if (options.stop_on_failure && i > first_fail.load(std::memory_order_acquire)) return;
    if (bounded && Clock::now() >= deadline) {
      deadline_hit.store(true, std::memory_order_relaxed);
      return;
    }
    SeedRun& run = result.runs[i];
    run.spec = SampleScenario(run.seed);
    Fill(run, RunScenario(run.spec, options.run));
    if (!run.ok) {
      // CAS-min: remember the lowest failing index.
      std::uint64_t seen = first_fail.load(std::memory_order_relaxed);
      while (i < seen &&
             !first_fail.compare_exchange_weak(seen, i, std::memory_order_acq_rel)) {
      }
    }
  });
  result.deadline_hit = deadline_hit.load(std::memory_order_relaxed);
  return result;
}

}  // namespace uvs::testkit
