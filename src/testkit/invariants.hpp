// Whole-system invariant checks for fuzzed end-to-end runs.
//
// Each checker appends human-readable violations to an InvariantReport;
// an empty report means the run upheld every checked property:
//  * byte conservation — every byte accepted by Write() is placed on
//    exactly one layer of its producer's DHP chain;
//  * metadata coverage — records tile the written ranges with no overlap
//    and account for every written byte (write-once workloads);
//  * VA round-trip — every record's virtual address decodes to a
//    (layer, physical) pair that re-encodes to the same VA (Eq. 1);
//  * range partitioning — each metadata partition only holds records of
//    ranges it owns, no record spans a range boundary, and the partitions
//    union to the global view;
//  * pool conservation — no bandwidth pool delivered more bytes than
//    peak_capacity x busy_time allows;
//  * quiescence — once the event queue drains, no simulation process is
//    left stranded (a stranded process is a deadlock).
//
// The narrow checkers take plain data so unit tests can feed synthetic
// violations; the aggregate ones walk a live system.
#pragma once

#include <string>
#include <vector>

#include "src/common/units.hpp"
#include "src/meta/record.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/fair_share.hpp"
#include "src/storage/pfs.hpp"
#include "src/univistor/system.hpp"
#include "src/workload/scenario.hpp"

namespace uvs::testkit {

struct Violation {
  std::string invariant;  // short id, e.g. "byte-conservation"
  std::string detail;     // what was expected vs observed
};

struct InvariantReport {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  void Add(std::string invariant, std::string detail) {
    violations.push_back({std::move(invariant), std::move(detail)});
  }
  /// One line per violation; "all invariants hold" when empty.
  std::string ToString() const;
};

/// Checks that `records` (offset-sorted, as meta::Query returns) are
/// pairwise disjoint and sum to `expected_bytes`. Valid for write-once
/// workloads, where coverage equals total bytes written. `label` names the
/// file in violation messages.
void CheckRecordCoverage(const std::vector<meta::MetadataRecord>& records, Bytes expected_bytes,
                         const std::string& label, InvariantReport& report);

/// Checks one bandwidth pool's service against its capacity envelope:
/// total_bytes <= peak_capacity * busy_time (+ completion rounding slack),
/// and no flow still queued once the simulation has drained.
void CheckPool(const sim::FairSharePool& pool, InvariantReport& report);

/// Byte conservation, metadata coverage, VA round-trips, and partition
/// ownership for every file the system holds.
void CheckUniviStor(const univistor::UniviStor& system, InvariantReport& report);

/// CheckPool over every pool in the machine: per-node NICs, NUMA DRAM,
/// local SSDs, per-process CPU pools, BB nodes, and PFS OSTs.
void CheckPoolConservation(workload::Scenario& scenario, InvariantReport& report);

/// After Run() has drained: no live (stranded) processes remain.
void CheckQuiescence(const sim::Engine& engine, InvariantReport& report);

/// Erasure-coding invariants after quiescence:
///  * parity consistency — every materialized stripe's parity snapshots
///    equal its applied data versions (no write left parity torn);
///  * redundancy bound — while no stripe ever saw more than its m shards
///    dead or latent-corrupt at once, ec_lost_bytes must be zero.
void CheckErasure(const storage::Pfs& pfs, InvariantReport& report);

/// Lost-byte expectation after node failure, derived record by record from
/// the metadata: a read is lost iff its record sits on a volatile layer
/// (DRAM/SSD) of a failed node, the BB replica watermark does not cover its
/// physical extent, and neither does the PFS durability watermark. This is
/// deliberately NOT short-circuited on replicate_volatile or HasPfsCopy:
/// replication and flushes are watermarks, so a file can have a PFS copy
/// and still lose the extents written after the flush snapshot (the
/// historical FailNode under-reporting bug). Exact when the failure happens
/// at a drained point and each written byte is read back at most once; an
/// upper bound for seed-timed plans, where reads that beat the crash
/// succeed but still qualify here.
Bytes ExpectedLostBytes(const univistor::UniviStor& system, vmpi::Runtime& runtime);

}  // namespace uvs::testkit
