// Greedy scenario shrinking: given a failing ScenarioSpec and a predicate
// that re-runs it, repeatedly try simplifying transformations (fewer
// ranks, fewer steps, less data, default toggles, no failure injection,
// simpler workload) and keep any candidate that still fails. Runs to a
// fixpoint or an attempt budget; the result is a minimal-ish reproducer
// whose ReproCommand() is what the fuzzer prints.
#pragma once

#include <functional>

#include "src/testkit/scenario_spec.hpp"

namespace uvs::testkit {

/// Returns true when `spec` still reproduces the failure under shrink.
using FailurePredicate = std::function<bool(const ScenarioSpec&)>;

struct ShrinkResult {
  ScenarioSpec spec;  // the smallest still-failing spec found
  int attempts = 0;   // predicate evaluations spent
};

/// `max_attempts` bounds predicate evaluations (each one is a full
/// simulation run); the original `failing` spec is returned unchanged if
/// no simplification reproduces the failure.
ShrinkResult Shrink(const ScenarioSpec& failing, const FailurePredicate& still_fails,
                    int max_attempts = 64);

}  // namespace uvs::testkit
