#include "src/testkit/runner.hpp"

#include <cmath>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/data_elevator.hpp"
#include "src/baselines/lustre_driver.hpp"
#include "src/cluster/job.hpp"
#include "src/cluster/simulation.hpp"
#include "src/common/rng.hpp"
#include "src/fault/injector.hpp"
#include "src/fault/plan.hpp"
#include "src/hw/params.hpp"
#include "src/obs/recorder.hpp"
#include "src/storage/pfs.hpp"
#include "src/univistor/config.hpp"
#include "src/univistor/driver.hpp"
#include "src/univistor/system.hpp"
#include "src/workload/bdcats.hpp"
#include "src/workload/hdf_micro.hpp"
#include "src/workload/scenario.hpp"
#include "src/workload/vpic.hpp"

namespace uvs::testkit {

namespace {

constexpr const char* kMicroFileName = "fuzz.h5";
constexpr const char* kVpicPrefix = "fuzz_vpic";

hw::ClusterParams BuildClusterParams(const ScenarioSpec& spec) {
  hw::ClusterParams params = hw::CoriPreset(spec.procs, spec.procs_per_node);
  // Small cores-per-node so client ranks and the per-node UniviStor servers
  // genuinely contend; small caches so the DHP cascade actually spills.
  params.node.cores = 8;
  params.node.dram_cache_capacity = spec.dram_cache_capacity;
  params.node.has_local_ssd = spec.has_ssd;
  params.node.ssd_capacity = spec.ssd_capacity;
  params.bb.bb_nodes = spec.bb_nodes;
  params.bb.capacity_per_bb_node = spec.bb_capacity_per_node;
  params.pfs.osts = spec.osts;
  params.seed = spec.seed;
  return params;
}

univistor::Config BuildConfig(const ScenarioSpec& spec) {
  univistor::Config config;
  config.collective_open_close = spec.coc;
  config.adaptive_striping = spec.adpt;
  config.location_aware_reads = spec.la;
  config.interference_aware_flush = spec.ia;
  config.flush_on_close = spec.flush_on_close;
  config.first_cache_layer = static_cast<hw::Layer>(spec.first_layer);
  config.chunk_size = spec.chunk_size;
  config.metadata_range_size = spec.metadata_range_size;
  config.replicate_volatile = spec.replicate_volatile;
  config.promote_hot_reads = spec.promote_hot_reads;
  config.read_cache_capacity_per_node = 16_MiB;
  config.recovery.enabled = spec.recovery;
  if (spec.ec_k > 0) {
    config.ec.enabled = true;
    config.ec.data_shards = spec.ec_k;
    config.ec.parity_shards = spec.ec_m;
  }
  return config;
}

/// Routes the EC plan events (ostfail/latent/scrub) into the scenario's
/// shared Pfs; with recovery on, an OST failure also spawns the rebuild.
void WireEcHandlers(fault::Injector& injector, workload::Scenario& scenario,
                    const ScenarioSpec& spec) {
  storage::Pfs* pfs = &scenario.pfs();
  sim::Engine* engine = &scenario.engine();
  const bool recovery = spec.recovery;
  injector.AddOstFailHandler([pfs, engine, recovery](int ost) {
    pfs->FailOst(ost);
    if (recovery) engine->Spawn(pfs->RebuildOst(ost), "ec-rebuild");
  });
  injector.AddLatentHandler([pfs](int ost) { pfs->InjectLatentError(ost); });
  const Time interval = univistor::Config::EcConfig{}.scrub_stripe_interval;
  injector.AddScrubHandler(
      [pfs, engine, interval] { engine->Spawn(pfs->ScrubPass(interval), "ec-scrub"); });
}

/// One full background scrub pass after the workload drained (spec.scrub).
void RunFinalScrub(workload::Scenario& scenario) {
  scenario.engine().Spawn(
      scenario.pfs().ScrubPass(univistor::Config::EcConfig{}.scrub_stripe_interval),
      "ec-scrub-final");
  scenario.engine().Run();
}

/// The system under test behind one AdioDriver.
struct SystemUnderTest {
  std::unique_ptr<univistor::UniviStor> univistor;
  std::unique_ptr<univistor::UniviStorDriver> univistor_driver;
  std::unique_ptr<baselines::LustreDriver> lustre;
  std::unique_ptr<baselines::DataElevator> data_elevator;
  std::unique_ptr<baselines::DataElevatorDriver> data_elevator_driver;
  vmpi::AdioDriver* driver = nullptr;
};

SystemUnderTest BuildSystem(const ScenarioSpec& spec, workload::Scenario& scenario) {
  SystemUnderTest sut;
  switch (spec.system) {
    case SystemKind::kUniviStor:
      sut.univistor = std::make_unique<univistor::UniviStor>(
          scenario.runtime(), scenario.pfs(), scenario.workflow(), BuildConfig(spec));
      sut.univistor_driver = std::make_unique<univistor::UniviStorDriver>(*sut.univistor);
      sut.driver = sut.univistor_driver.get();
      break;
    case SystemKind::kLustre: {
      baselines::LustreDriver::Options options;
      options.stripe.stripe_count = spec.osts;  // the default 248 assumes Cori
      sut.lustre = std::make_unique<baselines::LustreDriver>(scenario.runtime(), scenario.pfs(),
                                                             options);
      sut.driver = sut.lustre.get();
      break;
    }
    case SystemKind::kDataElevator:
      sut.data_elevator =
          std::make_unique<baselines::DataElevator>(scenario.runtime(), scenario.pfs());
      sut.data_elevator_driver =
          std::make_unique<baselines::DataElevatorDriver>(*sut.data_elevator);
      sut.driver = sut.data_elevator_driver.get();
      break;
  }
  return sut;
}

/// Fails the spec'd node at the spec'd point and records the exact
/// expected data loss for the read phase that follows.
void InjectFailure(const ScenarioSpec& spec, workload::Scenario& scenario,
                   univistor::UniviStor& system, const std::vector<std::string>& names,
                   RunOutcome& outcome) {
  if (spec.failure == FailureMode::kDuringFlush) {
    // Start a fresh flush and fail the node while it is in flight.
    for (const auto& name : names) system.TriggerFlush(system.OpenOrCreate(name));
    scenario.engine().RunUntil(scenario.engine().Now() + 1e-4);
  }
  system.FailNode(spec.failed_node);
  scenario.engine().Run();  // drain in-flight flushes and replication
  outcome.expected_lost_bytes = ExpectedLostBytes(system, scenario.runtime());
}

/// Drives the spec's workload; returns the names of the files it wrote.
std::vector<std::string> RunWorkload(const ScenarioSpec& spec, workload::Scenario& scenario,
                                     SystemUnderTest& sut, RunOutcome& outcome) {
  // kPlan crashes are scheduled by the armed fault::Injector, not injected
  // at a workload milestone — only the legacy point modes go through
  // InjectFailure.
  const bool inject = (spec.failure == FailureMode::kAfterWrites ||
                       spec.failure == FailureMode::kDuringFlush) &&
                      sut.univistor != nullptr;
  const bool plan_readback = spec.failure == FailureMode::kPlan && sut.univistor != nullptr;

  switch (spec.workload) {
    case WorkloadKind::kMicro:
    case WorkloadKind::kMicroReadBack: {
      const auto app = scenario.runtime().LaunchProgram("fuzz-app", spec.procs);
      workload::MicroParams params{
          .bytes_per_proc = spec.bytes_per_rank, .read = false, .file_name = kMicroFileName};
      workload::RunHdfMicro(scenario, app, *sut.driver, params);
      if (spec.workload == WorkloadKind::kMicroReadBack) {
        if (inject) InjectFailure(spec, scenario, *sut.univistor, {kMicroFileName}, outcome);
        params.read = true;
        workload::RunHdfMicro(scenario, app, *sut.driver, params);
      }
      return {kMicroFileName};
    }

    case WorkloadKind::kVpic: {
      const auto app = scenario.runtime().LaunchProgram("fuzz-vpic", spec.procs);
      const workload::VpicParams params{.steps = spec.steps,
                                        .vars = 2,
                                        .bytes_per_var = spec.bytes_per_rank / 2,
                                        .compute_time = spec.compute_time,
                                        .file_prefix = kVpicPrefix};
      workload::VpicRun vpic(scenario, app, *sut.driver, params);
      vpic.Start();
      scenario.engine().Run();
      std::vector<std::string> names;
      for (int s = 0; s < params.steps; ++s) names.push_back(vpic.StepFileName(s));
      if (inject) InjectFailure(spec, scenario, *sut.univistor, names, outcome);
      if (inject || plan_readback) {
        // Read everything back through BD-CATS to exercise the loss path.
        const auto reader = scenario.runtime().LaunchProgram("fuzz-bdcats", spec.procs);
        workload::RunBdcats(scenario, reader, *sut.driver,
                            workload::BdcatsParams{.producer = params,
                                                   .producer_ranks = spec.procs});
      }
      return names;
    }

    case WorkloadKind::kWorkflow: {
      const int producers = spec.procs / 2;
      const int consumers = spec.procs - producers;
      const auto producer = scenario.runtime().LaunchProgram("fuzz-vpic", producers);
      const auto consumer = scenario.runtime().LaunchProgram("fuzz-bdcats", consumers);
      const workload::VpicParams params{.steps = spec.steps,
                                        .vars = 2,
                                        .bytes_per_var = spec.bytes_per_rank / 2,
                                        .compute_time = spec.compute_time,
                                        .file_prefix = kVpicPrefix};
      workload::VpicRun vpic(scenario, producer, *sut.driver, params);
      workload::BdcatsRun bdcats(
          scenario, consumer, *sut.driver,
          workload::BdcatsParams{.producer = params, .producer_ranks = producers});
      vpic.Start();
      if (sut.univistor != nullptr) {
        // Workflow locks serialize per-file access; overlap is safe.
        bdcats.Start();
      } else {
        // Baselines have no workflow management: run sequentially so the
        // consumer never reads a half-written file.
        scenario.engine().Spawn(
            [](workload::VpicRun& v, workload::BdcatsRun& b) -> sim::Task {
              co_await v.done().Wait();
              b.Start();
            }(vpic, bdcats),
            "fuzz-workflow-chain");
      }
      scenario.engine().Run();
      std::vector<std::string> names;
      for (int s = 0; s < params.steps; ++s) names.push_back(vpic.StepFileName(s));
      return names;
    }
  }
  return {};
}

void CollectFileSizes(const std::vector<std::string>& names, SystemUnderTest& sut,
                      workload::Scenario& scenario, RunOutcome& outcome) {
  for (const auto& name : names) {
    if (sut.univistor != nullptr) {
      outcome.file_sizes[name] = sut.univistor->LogicalSize(sut.univistor->OpenOrCreate(name));
    } else {
      const auto handle = scenario.pfs().Lookup(name);
      if (handle.ok()) outcome.file_sizes[name] = scenario.pfs().FileSize(*handle);
    }
  }
}

/// Replays the workload through the Lustre baseline and compares sizes.
void RunDifferential(const ScenarioSpec& spec, RunOutcome& outcome) {
  ScenarioSpec baseline_spec = spec;
  baseline_spec.system = SystemKind::kLustre;
  baseline_spec.failure = FailureMode::kNone;
  baseline_spec.ec_k = 0;  // the baseline has no EC path
  baseline_spec.ec_m = 0;
  baseline_spec.scrub = false;
  RunOptions options;
  options.differential = false;
  const RunOutcome baseline = RunScenario(baseline_spec, options);
  for (const auto& v : baseline.report.violations)
    outcome.report.Add("differential-baseline:" + v.invariant, v.detail);
  for (const auto& [name, size] : outcome.file_sizes) {
    const auto it = baseline.file_sizes.find(name);
    if (it == baseline.file_sizes.end()) {
      outcome.report.Add("differential",
                         "file '" + name + "' exists under UniviStor but not under Lustre");
    } else if (it->second != size) {
      outcome.report.Add("differential", "file '" + name + "': UniviStor exposes " +
                                             std::to_string(size) + " bytes, Lustre " +
                                             std::to_string(it->second));
    }
  }
  if (baseline.file_sizes.size() != outcome.file_sizes.size()) {
    outcome.report.Add("differential",
                       "UniviStor run produced " + std::to_string(outcome.file_sizes.size()) +
                           " files, Lustre run " + std::to_string(baseline.file_sizes.size()));
  }
}

/// Derives the multi-tenant job mix for a jobs>1 spec: every job has the
/// spec's workload shape with procs/jobs client ranks, and arrivals are
/// Poisson with mean `spec.arrival` (all at t=0 when it is zero). Purely
/// seed-deterministic.
std::vector<cluster::JobSpec> BuildJobMix(const ScenarioSpec& spec) {
  Rng rng(spec.seed ^ 0x5c1ed01eull);
  std::vector<cluster::JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(spec.jobs));
  Time clock = 0;
  for (int j = 0; j < spec.jobs; ++j) {
    cluster::JobSpec job;
    job.id = j;
    job.arrival = clock;
    if (spec.arrival > 0) clock += -spec.arrival * std::log(1.0 - rng.NextDouble());
    job.kind = spec.workload == WorkloadKind::kVpic ? cluster::JobKind::kVpic
               : spec.workload == WorkloadKind::kMicroReadBack
                   ? cluster::JobKind::kMicroReadBack
                   : cluster::JobKind::kMicroWrite;
    job.system = cluster::JobSystem::kUniviStor;  // parse rejects baselines for jobs>1
    job.procs = std::max(1, spec.procs / spec.jobs);
    job.bytes_per_rank = spec.bytes_per_rank;
    job.steps = spec.workload == WorkloadKind::kVpic ? spec.steps : 1;
    job.compute_time = spec.compute_time;
    job.first_layer = spec.first_layer;
    job.ec = spec.ec_k > 0;  // redundant with base_config.ec, kept explicit
    jobs.push_back(job);
  }
  return jobs;
}

/// The jobs>1 path: one shared machine, one ClusterSim, per-job UniviStor
/// instances contending through it. Cluster-level invariants (starvation
/// horizon, BB reservation conservation, per-job lost-byte accounting)
/// ride on top of the per-system checks.
RunOutcome RunClusterScenario(const ScenarioSpec& spec, const RunOptions& options) {
  RunOutcome outcome;
  outcome.spec = spec;
  try {
    workload::ScenarioOptions scenario_options{
        .procs = spec.procs,
        .policy = spec.ia ? sched::PlacementPolicy::kInterferenceAware
                          : sched::PlacementPolicy::kCfs,
        .workflow_enabled = false,
        .cluster_params = BuildClusterParams(spec)};
    workload::Scenario scenario(scenario_options);

    cluster::ClusterOptions cluster_options;
    cluster_options.policy = static_cast<cluster::Policy>(spec.csched);
    cluster_options.base_config = BuildConfig(spec);
    cluster_options.procs_per_node = spec.procs_per_node;
    cluster::ClusterSim sim(scenario, BuildJobMix(spec), cluster_options);

    std::unique_ptr<fault::Injector> injector;
    if (spec.failure == FailureMode::kPlan) {
      auto plan = fault::ParsePlan(spec.fault_plan);
      if (!plan.ok()) {
        outcome.report.Add("fault-plan", plan.status().message());
        return outcome;
      }
      injector = std::make_unique<fault::Injector>(scenario.engine(), *plan);
      sim.AttachInjector(*injector);
      if (spec.ec_k > 0) WireEcHandlers(*injector, scenario, spec);
      injector->Arm();
    }

    sim.Run();
    if (spec.ec_k > 0 && spec.scrub) RunFinalScrub(scenario);
    outcome.sim_time = scenario.engine().Now();
    for (int j = 0; j < sim.job_count(); ++j) {
      if (const univistor::UniviStor* sys = sim.system(j)) {
        outcome.lost_bytes += sys->lost_bytes();
        for (int f = 0; f < sys->file_count(); ++f) {
          const auto fid = static_cast<storage::FileId>(f);
          outcome.file_sizes[sys->FileName(fid)] = sys->LogicalSize(fid);
        }
      }
    }

    if (options.check_invariants) {
      CheckQuiescence(scenario.engine(), outcome.report);
      CheckPoolConservation(scenario, outcome.report);
      if (sim.arrived_jobs() != sim.job_count()) {
        outcome.report.Add("cluster-conservation",
                           std::to_string(sim.arrived_jobs()) + " of " +
                               std::to_string(sim.job_count()) + " jobs arrived");
      }
      if (sim.completed_jobs() != sim.arrived_jobs()) {
        outcome.report.Add("cluster-starvation",
                           std::to_string(sim.arrived_jobs() - sim.completed_jobs()) +
                               " arrived jobs never completed (queued or stranded)");
      }
      if (outcome.sim_time > sim.StarvationHorizon()) {
        outcome.report.Add("cluster-starvation",
                           "mix drained at t=" + std::to_string(outcome.sim_time) +
                               ", past the bounded horizon " +
                               std::to_string(sim.StarvationHorizon()));
      }
      if (sim.peak_bb_reserved() > sim.bb_capacity()) {
        outcome.report.Add("cluster-bb-capacity",
                           "peak BB reservation " + std::to_string(sim.peak_bb_reserved()) +
                               " exceeds capacity " + std::to_string(sim.bb_capacity()));
      }
      if (spec.ec_k > 0) CheckErasure(scenario.pfs(), outcome.report);
      for (int j = 0; j < sim.job_count(); ++j) {
        const univistor::UniviStor* sys = sim.system(j);
        if (sys == nullptr) continue;
        CheckUniviStor(*sys, outcome.report);
        const std::string label = "job " + std::to_string(j);
        const Bytes lost = sys->lost_bytes();
        if (spec.failure == FailureMode::kPlan) {
          // Plan crashes land at arbitrary points, so the metadata-derived
          // expectation is an upper bound per tenant (see ExpectedLostBytes).
          const Bytes bound = ExpectedLostBytes(*sys, scenario.runtime());
          outcome.expected_lost_bytes += bound;
          if (lost > bound) {
            outcome.report.Add("cluster-lost-bound",
                               label + " reports " + std::to_string(lost) +
                                   " lost bytes, above its metadata-derived bound of " +
                                   std::to_string(bound));
          }
        } else if (lost != 0) {
          outcome.report.Add("cluster-lost-accounting",
                             label + " reports " + std::to_string(lost) +
                                 " lost bytes with no fault injected");
        }
      }
    }
  } catch (const std::exception& e) {
    outcome.report.Add("exception", e.what());
  } catch (...) {
    outcome.report.Add("exception", "non-standard exception escaped the run");
  }
  return outcome;
}

RunOutcome RunSingleScenario(const ScenarioSpec& spec, const RunOptions& options) {
  RunOutcome outcome;
  outcome.spec = spec;
  try {
    workload::ScenarioOptions scenario_options{
        .procs = spec.procs,
        .policy = spec.ia ? sched::PlacementPolicy::kInterferenceAware
                          : sched::PlacementPolicy::kCfs,
        .workflow_enabled = spec.workload == WorkloadKind::kWorkflow,
        .cluster_params = BuildClusterParams(spec)};
    workload::Scenario scenario(scenario_options);
    SystemUnderTest sut = BuildSystem(spec, scenario);

    // Seed-timed fault plans: arm the injector before the workload starts
    // so its events interleave with writes, flushes, and reads.
    std::unique_ptr<fault::Injector> injector;
    if (spec.failure == FailureMode::kPlan && sut.univistor != nullptr) {
      auto plan = fault::ParsePlan(spec.fault_plan);
      if (!plan.ok()) {
        outcome.report.Add("fault-plan", plan.status().message());
        return outcome;
      }
      injector = std::make_unique<fault::Injector>(scenario.engine(), *plan);
      injector->set_cluster(&scenario.cluster());
      injector->SetCrashHandler([&sut](int node) { sut.univistor->FailNode(node); });
      if (spec.ec_k > 0) WireEcHandlers(*injector, scenario, spec);
      sut.univistor->AttachFaults(injector.get());
      injector->Arm();
    }

    const auto names = RunWorkload(spec, scenario, sut, outcome);
    scenario.engine().Run();  // final drain (asynchronous flushes)
    if (spec.ec_k > 0 && spec.scrub) RunFinalScrub(scenario);
    outcome.sim_time = scenario.engine().Now();
    CollectFileSizes(names, sut, scenario, outcome);
    if (sut.univistor != nullptr) outcome.lost_bytes = sut.univistor->lost_bytes();
    if (spec.failure == FailureMode::kPlan && sut.univistor != nullptr) {
      outcome.expected_lost_bytes = ExpectedLostBytes(*sut.univistor, scenario.runtime());
    }

    if (options.check_invariants) {
      CheckQuiescence(scenario.engine(), outcome.report);
      CheckPoolConservation(scenario, outcome.report);
      if (sut.univistor != nullptr) CheckUniviStor(*sut.univistor, outcome.report);
      if (spec.ec_k > 0) CheckErasure(scenario.pfs(), outcome.report);
      if (spec.failure == FailureMode::kPlan) {
        // Plan crashes land at arbitrary points relative to the reads, so
        // reads that beat the crash legitimately succeed; the watermark
        // expectation is an upper bound ("bytes lost never exceed the
        // un-replicated, un-flushed dirty window of the dead nodes").
        if (outcome.lost_bytes > outcome.expected_lost_bytes) {
          outcome.report.Add("lost-bound",
                             "system reports " + std::to_string(outcome.lost_bytes) +
                                 " lost bytes, above the metadata-derived bound of " +
                                 std::to_string(outcome.expected_lost_bytes));
        }
      } else if (outcome.lost_bytes != outcome.expected_lost_bytes) {
        outcome.report.Add("lost-accounting",
                           "system reports " + std::to_string(outcome.lost_bytes) +
                               " lost bytes, metadata-derived expectation is " +
                               std::to_string(outcome.expected_lost_bytes));
      }
    }
    if (options.differential && spec.system == SystemKind::kUniviStor &&
        spec.failure == FailureMode::kNone) {
      RunDifferential(spec, outcome);
    }
  } catch (const std::exception& e) {
    outcome.report.Add("exception", e.what());
  } catch (...) {
    outcome.report.Add("exception", "non-standard exception escaped the run");
  }
  return outcome;
}

}  // namespace

RunOutcome RunScenario(const ScenarioSpec& spec, const RunOptions& options) {
  obs::Recorder* recorder = obs::Recorder::Current();
  const std::uint64_t dropped_before = recorder != nullptr ? recorder->spans_dropped() : 0;
  RunOutcome outcome = spec.jobs > 1 ? RunClusterScenario(spec, options)
                                     : RunSingleScenario(spec, options);
  if (recorder != nullptr)
    outcome.spans_dropped = recorder->spans_dropped() - dropped_before;
  // A failing scenario freezes the flight-recorder ring to disk (no-op
  // without an installed recorder or dump path).
  if (!outcome.ok())
    if (obs::FlightRecorder* flight = obs::FlightRecorder::Current()) {
      for (const auto& v : outcome.report.violations)
        flight->Note(outcome.sim_time, "invariant", v.invariant, 0, v.detail);
      const Status dump = flight->Dump("invariant-failure");
      if (!dump.ok()) outcome.report.Add("flight-dump", dump.message());
    }
  return outcome;
}

}  // namespace uvs::testkit
