#include "src/meta/service.hpp"

#include <algorithm>

#include "src/obs/recorder.hpp"

namespace uvs::meta {

DistributedMetadataService::DistributedMetadataService(int servers, Bytes range_size)
    : partitioner_(servers, range_size),
      partitions_(static_cast<std::size_t>(servers)) {}

std::vector<int> DistributedMetadataService::Insert(const MetadataRecord& record) {
  std::vector<int> touched;
  const Bytes range_size = partitioner_.range_size();
  Bytes offset = record.offset;
  Bytes remaining = record.len;
  Bytes va = record.va;
  std::uint64_t pieces = 0;
  while (remaining > 0) {
    const Bytes range_end = (offset / range_size + 1) * range_size;
    const Bytes piece = std::min(remaining, range_end - offset);
    const int server = partitioner_.ServerOf(offset);
    partitions_[static_cast<std::size_t>(server)].Insert(
        MetadataRecord{record.fid, offset, piece, record.producer, va});
    if (std::find(touched.begin(), touched.end(), server) == touched.end())
      touched.push_back(server);
    offset += piece;
    va += piece;
    remaining -= piece;
    ++pieces;
  }
  obs::Count("meta.insert.calls");
  obs::Count("meta.insert.records", pieces);
  if (pieces > 1) obs::Count("meta.insert.range_splits", pieces - 1);
  return touched;
}

std::vector<MetadataRecord> DistributedMetadataService::Query(storage::FileId fid, Bytes offset,
                                                              Bytes len) const {
  std::vector<MetadataRecord> out;
  for (int server : partitioner_.ServersFor(offset, len)) {
    auto part = partitions_[static_cast<std::size_t>(server)].Query(fid, offset, len);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end(),
            [](const MetadataRecord& a, const MetadataRecord& b) { return a.offset < b.offset; });
  obs::Count("meta.query.calls");
  obs::Count("meta.query.records", out.size());
  return out;
}

std::vector<MetadataRecord> DistributedMetadataService::QueryPartition(
    int server, storage::FileId fid, Bytes offset, Bytes len) const {
  return partitions_.at(static_cast<std::size_t>(server)).Query(fid, offset, len);
}

std::size_t DistributedMetadataService::RetireServer(int server) {
  if (!partitioner_.alive(server)) return 0;
  if (!partitioner_.Retire(server)) return 0;
  RecordIndex& dead = partitions_.at(static_cast<std::size_t>(server));
  const std::vector<MetadataRecord> orphans = dead.All();
  dead.Clear();
  for (const MetadataRecord& rec : orphans) {
    // Records were already split at range boundaries on insert, so each
    // one lands whole on its new owner.
    const int heir = partitioner_.ServerOf(rec.offset);
    partitions_[static_cast<std::size_t>(heir)].Insert(rec);
  }
  obs::Count("meta.retire.servers");
  obs::Count("meta.retire.records_moved", orphans.size());
  return orphans.size();
}

std::size_t DistributedMetadataService::TotalRecords() const {
  std::size_t n = 0;
  for (const auto& part : partitions_) n += part.size();
  return n;
}

}  // namespace uvs::meta
