// Offset-ordered index of metadata records for overlap queries. Used by
// each metadata partition and by the per-node shared metadata buffer that
// powers location-aware reads (§II-B4).
#pragma once

#include <cstdint>
#include <vector>

#include "src/kv/local_store.hpp"
#include "src/meta/record.hpp"

namespace uvs::meta {

class RecordIndex {
 public:
  std::size_t size() const { return store_.size(); }

  /// Records must not partially overlap existing ones; re-inserting the
  /// exact same (fid, offset) replaces it (overwrite-in-place).
  void Insert(const MetadataRecord& record);

  /// Records overlapping [offset, offset+len) of `fid`, clipped to the
  /// query range (offset, len and va adjusted), in offset order.
  std::vector<MetadataRecord> Query(storage::FileId fid, Bytes offset, Bytes len) const;

  /// Total bytes of `fid` covered by records in [offset, offset+len).
  Bytes CoveredBytes(storage::FileId fid, Bytes offset, Bytes len) const;

  /// Every record in (fid, offset) order — drained during repartitioning.
  std::vector<MetadataRecord> All() const;

  void Clear();

 private:
  struct Key {
    storage::FileId fid;
    Bytes offset;
    auto operator<=>(const Key&) const = default;
  };
  kv::LocalStore<Key, MetadataRecord> store_;
};

}  // namespace uvs::meta
