// Metadata record for one placed file segment (§II-B3, Fig. 3): maps a
// logical (file, offset, len) range to its producer process and the
// virtual address of its bytes in that producer's log chain.
#pragma once

#include <cstdint>

#include "src/common/units.hpp"
#include "src/storage/layer_store.hpp"

namespace uvs::meta {

struct MetadataRecord {
  storage::FileId fid = 0;
  Bytes offset = 0;  // logical offset in the shared file
  Bytes len = 0;
  std::int64_t producer = 0;  // global producer id (program, rank) that wrote the segment
  Bytes va = 0;      // virtual address of the segment's first byte

  Bytes end() const { return offset + len; }

  friend bool operator==(const MetadataRecord&, const MetadataRecord&) = default;
};

}  // namespace uvs::meta
