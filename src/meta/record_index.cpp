#include "src/meta/record_index.hpp"

#include <algorithm>

namespace uvs::meta {

void RecordIndex::Insert(const MetadataRecord& record) {
  store_.Put(Key{record.fid, record.offset}, record);
}

std::vector<MetadataRecord> RecordIndex::Query(storage::FileId fid, Bytes offset,
                                               Bytes len) const {
  std::vector<MetadataRecord> out;
  if (len == 0) return out;
  const Bytes end = offset + len;

  // A record starting before `offset` can still overlap it.
  if (auto floor = store_.FloorEntry(Key{fid, offset})) {
    const MetadataRecord& rec = floor->second;
    if (rec.fid == fid && rec.end() > offset && rec.offset < offset) {
      MetadataRecord clipped = rec;
      const Bytes skip = offset - rec.offset;
      clipped.offset = offset;
      clipped.va += skip;
      clipped.len = std::min(rec.len - skip, len);
      out.push_back(clipped);
    }
  }
  for (auto& [key, rec] : store_.Scan(Key{fid, offset}, Key{fid, end})) {
    MetadataRecord clipped = rec;
    if (clipped.end() > end) clipped.len = end - clipped.offset;
    out.push_back(clipped);
  }
  return out;
}

Bytes RecordIndex::CoveredBytes(storage::FileId fid, Bytes offset, Bytes len) const {
  Bytes covered = 0;
  for (const auto& rec : Query(fid, offset, len)) covered += rec.len;
  return covered;
}

std::vector<MetadataRecord> RecordIndex::All() const {
  std::vector<MetadataRecord> out;
  out.reserve(store_.size());
  for (auto& [key, rec] : store_.Entries()) out.push_back(rec);
  return out;
}

void RecordIndex::Clear() { store_.Clear(); }

}  // namespace uvs::meta
