// Distributed metadata service (§II-B3, Fig. 3).
//
// Records are partitioned by logical offset: the offset space is cut into
// fixed-size ranges assigned round-robin to the UniviStor servers; a record
// spanning a range boundary is split so each partition fully owns its
// entries. This object holds the *state*; the network/RPC cost of reaching
// a partition is charged by the server runtime that routes the request.
#pragma once

#include <vector>

#include "src/kv/range_partitioner.hpp"
#include "src/meta/record_index.hpp"

namespace uvs::meta {

class DistributedMetadataService {
 public:
  DistributedMetadataService(int servers, Bytes range_size);

  const kv::RangePartitioner& partitioner() const { return partitioner_; }
  int server_count() const { return partitioner_.servers(); }

  /// Server that owns the range containing `offset`.
  int ServerOf(Bytes offset) const { return partitioner_.ServerOf(offset); }

  /// Inserts `record`, splitting it at range boundaries. Returns the
  /// distinct servers touched (for RPC cost accounting by the caller).
  std::vector<int> Insert(const MetadataRecord& record);

  /// All records overlapping [offset, offset+len), clipped, offset-sorted.
  std::vector<MetadataRecord> Query(storage::FileId fid, Bytes offset, Bytes len) const;

  /// Query restricted to one partition (a client contacting one server).
  std::vector<MetadataRecord> QueryPartition(int server, storage::FileId fid, Bytes offset,
                                             Bytes len) const;

  std::size_t RecordCount(int server) const {
    return partitions_.at(static_cast<std::size_t>(server)).size();
  }
  std::size_t TotalRecords() const;

  /// Failure recovery: retires `server` in the partitioner and re-homes
  /// its records onto the surviving owners. Returns the number of records
  /// moved; 0 (and no state change) if it was the last live server or
  /// already retired.
  std::size_t RetireServer(int server);
  bool ServerAlive(int server) const { return partitioner_.alive(server); }

 private:
  kv::RangePartitioner partitioner_;
  std::vector<RecordIndex> partitions_;
};

}  // namespace uvs::meta
