// Minimal HDF5-like container over the MPI-IO layer: a metadata header
// followed by contiguous named datasets, each split into equal per-rank
// slices. Enough structure to exercise the paper's HDF5-over-MPI-IO
// stacking (§II-F): the superblock/metadata region lives at offset 0 and
// is what the collective open/close optimization avoids hammering.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "src/common/units.hpp"
#include "src/vmpi/file.hpp"

namespace uvs::h5lite {

struct DatasetSpec {
  std::string name;
  Bytes elem_size = 8;
  std::uint64_t elems_per_rank = 0;

  Bytes bytes_per_rank() const { return elem_size * elems_per_rank; }
};

class H5File {
 public:
  /// Header (superblock + object headers) reserved at the file's start.
  static constexpr Bytes kHeaderBytes = 64_KiB;

  H5File(vmpi::Runtime& runtime, vmpi::ProgramId program, std::string name,
         vmpi::FileMode mode, vmpi::AdioDriver& driver, std::vector<DatasetSpec> datasets);

  vmpi::File& file() { return *file_; }
  int ranks() const { return ranks_; }
  int dataset_count() const { return static_cast<int>(datasets_.size()); }
  const DatasetSpec& dataset(int i) const {
    return datasets_.at(static_cast<std::size_t>(i));
  }

  /// Start of dataset `i`'s data region.
  Bytes DatasetOffset(int i) const;
  /// Where rank `rank`'s slice of dataset `i` begins.
  Bytes SliceOffset(int i, int rank) const {
    return DatasetOffset(i) + static_cast<Bytes>(rank) * dataset(i).bytes_per_rank();
  }
  /// Header plus all datasets.
  Bytes TotalBytes() const;

  // Collective operations (every rank calls each).
  sim::Task Open(int rank) { return file_->Open(rank); }
  sim::Task Close(int rank) { return file_->Close(rank); }
  sim::Task WriteSlice(int rank, int dataset) {
    return file_->WriteAt(rank, SliceOffset(dataset, rank), this->dataset(dataset).bytes_per_rank());
  }
  sim::Task ReadSlice(int rank, int dataset) {
    return file_->ReadAt(rank, SliceOffset(dataset, rank), this->dataset(dataset).bytes_per_rank());
  }
  sim::Task WaitFlush() { return file_->driver().WaitFlush(*file_); }

 private:
  std::unique_ptr<vmpi::File> file_;
  int ranks_;
  std::vector<DatasetSpec> datasets_;
};

}  // namespace uvs::h5lite
