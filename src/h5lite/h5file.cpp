#include "src/h5lite/h5file.hpp"

namespace uvs::h5lite {

H5File::H5File(vmpi::Runtime& runtime, vmpi::ProgramId program, std::string name,
               vmpi::FileMode mode, vmpi::AdioDriver& driver,
               std::vector<DatasetSpec> datasets)
    : file_(std::make_unique<vmpi::File>(
          runtime, program, vmpi::FileOptions{std::move(name), mode, /*hdf5=*/true}, driver)),
      ranks_(runtime.ProgramSize(program)),
      datasets_(std::move(datasets)) {}

Bytes H5File::DatasetOffset(int i) const {
  Bytes offset = kHeaderBytes;
  for (int d = 0; d < i; ++d)
    offset += datasets_[static_cast<std::size_t>(d)].bytes_per_rank() *
              static_cast<Bytes>(ranks_);
  return offset;
}

Bytes H5File::TotalBytes() const { return DatasetOffset(dataset_count()); }

}  // namespace uvs::h5lite
