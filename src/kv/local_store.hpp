// Ordered in-memory key-value store — the per-server building block of the
// distributed metadata service (§II-B3). Header-only template.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "src/common/status.hpp"

namespace uvs::kv {

template <typename Key, typename Value>
class LocalStore {
 public:
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  /// Inserts or overwrites.
  void Put(const Key& key, Value value) { map_[key] = std::move(value); }

  std::optional<Value> Get(const Key& key) const {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  bool Contains(const Key& key) const { return map_.contains(key); }

  Status Delete(const Key& key) {
    return map_.erase(key) > 0 ? Status::Ok() : NotFoundError("key not present");
  }

  /// All entries with lo <= key < hi, in key order.
  std::vector<std::pair<Key, Value>> Scan(const Key& lo, const Key& hi) const {
    std::vector<std::pair<Key, Value>> out;
    for (auto it = map_.lower_bound(lo); it != map_.end() && it->first < hi; ++it)
      out.emplace_back(it->first, it->second);
    return out;
  }

  /// Every entry, in key order (used to drain a partition when its server
  /// is retired).
  std::vector<std::pair<Key, Value>> Entries() const {
    std::vector<std::pair<Key, Value>> out;
    out.reserve(map_.size());
    for (const auto& [key, value] : map_) out.emplace_back(key, value);
    return out;
  }

  void Clear() { map_.clear(); }

  /// Greatest entry with key <= `key` (predecessor query — used to find the
  /// metadata record covering a byte offset).
  std::optional<std::pair<Key, Value>> FloorEntry(const Key& key) const {
    auto it = map_.upper_bound(key);
    if (it == map_.begin()) return std::nullopt;
    --it;
    return std::make_pair(it->first, it->second);
  }

 private:
  std::map<Key, Value> map_;
};

}  // namespace uvs::kv
