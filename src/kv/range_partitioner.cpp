#include "src/kv/range_partitioner.hpp"

#include <algorithm>

namespace uvs::kv {

std::vector<int> RangePartitioner::ServersFor(Bytes offset, Bytes len) const {
  std::vector<int> out;
  if (len == 0) return out;
  const std::uint64_t first = RangeOf(offset);
  const std::uint64_t last = RangeOf(offset + len - 1);
  const std::uint64_t ranges = last - first + 1;
  if (alive_.empty() && ranges >= static_cast<std::uint64_t>(servers_)) {
    out.resize(static_cast<std::size_t>(servers_));
    for (int s = 0; s < servers_; ++s) out[static_cast<std::size_t>(s)] = s;
    return out;
  }
  if (ranges >= static_cast<std::uint64_t>(servers_)) {
    for (int s = 0; s < servers_; ++s)
      if (alive_[static_cast<std::size_t>(s)] != 0) out.push_back(s);
    return out;
  }
  for (std::uint64_t r = first; r <= last; ++r) {
    const int s = Resolve(static_cast<int>(r % static_cast<std::uint64_t>(servers_)));
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<Bytes, Bytes>> RangePartitioner::PiecesFor(int server, Bytes offset,
                                                                 Bytes len) const {
  std::vector<std::pair<Bytes, Bytes>> out;
  if (len == 0) return out;
  const std::uint64_t first = RangeOf(offset);
  const std::uint64_t last = RangeOf(offset + len - 1);
  for (std::uint64_t r = first; r <= last; ++r) {
    if (Resolve(static_cast<int>(r % static_cast<std::uint64_t>(servers_))) != server) continue;
    const Bytes range_lo = r * range_size_;
    const Bytes lo = std::max(range_lo, offset);
    const Bytes hi = std::min(range_lo + range_size_, offset + len);
    if (hi > lo) out.emplace_back(lo, hi - lo);
  }
  return out;
}

bool RangePartitioner::Retire(int server) {
  assert(server >= 0 && server < servers_);
  if (alive_.empty()) alive_.assign(static_cast<std::size_t>(servers_), 1);
  if (alive_[static_cast<std::size_t>(server)] == 0) return true;
  if (live_servers() <= 1) return false;
  alive_[static_cast<std::size_t>(server)] = 0;
  return true;
}

int RangePartitioner::live_servers() const {
  if (alive_.empty()) return servers_;
  return static_cast<int>(std::count(alive_.begin(), alive_.end(), std::uint8_t{1}));
}

}  // namespace uvs::kv
