// Offset-range partitioning of metadata records across servers (§II-B3,
// Fig. 3): the logical file's offset space is divided into fixed-size
// ranges, and ranges are assigned to servers round-robin.
//
// Servers can be retired (node failure): a retired server's ranges are
// re-homed onto the next live server in round-robin order (successor
// scan), so the mapping stays deterministic and every range keeps exactly
// one live owner without renumbering the survivors.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/common/units.hpp"

namespace uvs::kv {

class RangePartitioner {
 public:
  RangePartitioner(int servers, Bytes range_size) : servers_(servers), range_size_(range_size) {
    assert(servers > 0 && range_size > 0);
  }

  int servers() const { return servers_; }
  Bytes range_size() const { return range_size_; }

  std::uint64_t RangeOf(Bytes offset) const { return offset / range_size_; }

  /// Live server owning the range that contains `offset`.
  int ServerOf(Bytes offset) const {
    return Resolve(static_cast<int>(RangeOf(offset) % static_cast<std::uint64_t>(servers_)));
  }

  /// Distinct live servers whose ranges overlap [offset, offset+len), in
  /// ascending server order (used to fan a range query out).
  std::vector<int> ServersFor(Bytes offset, Bytes len) const;

  /// The sub-interval of [offset, offset+len) owned by `server`, expressed
  /// as the list of (offset, len) pieces (one per owned range touched).
  std::vector<std::pair<Bytes, Bytes>> PiecesFor(int server, Bytes offset, Bytes len) const;

  /// Marks `server` dead; its ranges re-home to the next live server.
  /// Returns false (and changes nothing) if it is the last live server.
  /// Retiring an already-dead server is a no-op returning true.
  bool Retire(int server);

  bool alive(int server) const {
    return alive_.empty() || alive_[static_cast<std::size_t>(server)] != 0;
  }
  int live_servers() const;

  /// The live server a nominal round-robin owner maps to: `primary` if
  /// alive, else the first live successor (wrapping).
  int Resolve(int primary) const {
    if (alive_.empty() || alive_[static_cast<std::size_t>(primary)] != 0) return primary;
    for (int step = 1; step < servers_; ++step) {
      const int s = (primary + step) % servers_;
      if (alive_[static_cast<std::size_t>(s)] != 0) return s;
    }
    return primary;  // unreachable: Retire refuses to kill the last server
  }

 private:
  int servers_;
  Bytes range_size_;
  // Empty until the first Retire (all alive); then one flag per server.
  std::vector<std::uint8_t> alive_;
};

}  // namespace uvs::kv
