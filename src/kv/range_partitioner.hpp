// Offset-range partitioning of metadata records across servers (§II-B3,
// Fig. 3): the logical file's offset space is divided into fixed-size
// ranges, and ranges are assigned to servers round-robin.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/common/units.hpp"

namespace uvs::kv {

class RangePartitioner {
 public:
  RangePartitioner(int servers, Bytes range_size) : servers_(servers), range_size_(range_size) {
    assert(servers > 0 && range_size > 0);
  }

  int servers() const { return servers_; }
  Bytes range_size() const { return range_size_; }

  std::uint64_t RangeOf(Bytes offset) const { return offset / range_size_; }

  /// Server owning the range that contains `offset`.
  int ServerOf(Bytes offset) const {
    return static_cast<int>(RangeOf(offset) % static_cast<std::uint64_t>(servers_));
  }

  /// Distinct servers whose ranges overlap [offset, offset+len), in
  /// ascending server order (used to fan a range query out).
  std::vector<int> ServersFor(Bytes offset, Bytes len) const;

  /// The sub-interval of [offset, offset+len) owned by `server`, expressed
  /// as the list of (offset, len) pieces (one per owned range touched).
  std::vector<std::pair<Bytes, Bytes>> PiecesFor(int server, Bytes offset, Bytes len) const;

 private:
  int servers_;
  Bytes range_size_;
};

}  // namespace uvs::kv
