// Arrival processes for multi-tenant mixes: seeded Poisson job mixes and
// trace-driven arrivals parsed from one-line job descriptions.
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/cluster/job.hpp"

namespace uvs::cluster {

/// Knobs of the seeded mix sampler. Menus are small so smoke-scale
/// machines still see real contention.
struct MixParams {
  int jobs = 8;
  /// Mean of the exponential interarrival draw; 0 lands every job at t=0.
  Time mean_interarrival = 0.01;
  /// Bias the mix toward BB-first jobs (the policy-ordering mixes).
  bool bb_bound = false;
  /// Fraction of jobs running the Lustre baseline instead of UniviStor.
  double lustre_fraction = 0.0;
  /// Fraction of UniviStor jobs whose PFS files are erasure-coded. The
  /// draw happens in a second pass appended after all classic draws, so
  /// the default 0.0 leaves historical mixes bit-identical.
  double ec_fraction = 0.0;
};

/// Deterministically samples a job mix: same (seed, params) -> same mix.
/// New draws must be appended after existing ones so historical seeds keep
/// their mixes (the testkit:: sampler stability discipline).
std::vector<JobSpec> SampleJobMix(std::uint64_t seed, const MixParams& params);

/// Parses one trace line of the form
///   `at=0.25 kind=vpic system=univistor procs=8 mb=4 steps=2 layer=0 ec=1`
/// (any order; `at` and `procs` required, the rest defaulted). `compute`
/// gives the inter-step compute seconds for vpic jobs; `ec` erasure-codes
/// the job's PFS files (UniviStor jobs only).
Result<JobSpec> ParseJobLine(const std::string& line);

/// Parses a whole trace (one job per non-empty line; '#' comments),
/// assigning ids in file order and sorting by arrival time (stable).
Result<std::vector<JobSpec>> ParseJobTrace(const std::string& text);

}  // namespace uvs::cluster
