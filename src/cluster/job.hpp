// Multi-tenant job model (ROADMAP item 1): every cluster job is a full
// application run — its own UniviStor instance (or Lustre baseline) over
// the one shared hw:: machine — so concurrent jobs contend physically for
// the burst buffer, the OSTs, the NICs and the per-node CPU schedulers.
//
// The scheduling-policy comparison follows the burst-buffer job-scheduling
// literature (arXiv 2111.10200): FCFS and EASY-backfill are BB-blind and
// grant a job whatever unreserved BB bytes happen to remain, while the
// BB-aware policy holds a job back until its full BB demand fits — trading
// queue wait against synchronous PFS spill.
#pragma once

#include <string>
#include <vector>

#include "src/common/units.hpp"

namespace uvs::cluster {

enum class JobKind : std::uint8_t {
  kMicroWrite,     // shared-file write benchmark
  kMicroReadBack,  // write then read back
  kVpic,           // multi-step VPIC-IO checkpoints
};
const char* JobKindName(JobKind kind);

enum class JobSystem : std::uint8_t { kUniviStor, kLustre };
const char* JobSystemName(JobSystem system);

/// Static description of one job in a mix. Sampled (arrival.hpp), parsed
/// from a trace line, or built directly by tests.
struct JobSpec {
  int id = 0;
  Time arrival = 0;
  JobKind kind = JobKind::kMicroWrite;
  JobSystem system = JobSystem::kUniviStor;
  int procs = 4;                 // client ranks
  Bytes bytes_per_rank = 4_MiB;  // per step for kVpic
  int steps = 1;                 // kVpic checkpoint steps
  Time compute_time = 0;         // kVpic inter-step compute
  /// First cache layer of the job's UniviStor instance: 0 = DRAM cascade,
  /// 2 = burst buffer first (BB-bound), 3 = straight to PFS.
  int first_layer = 0;
  /// Erasure-code this job's PFS files (UniviStor only): the job's config
  /// enables Config::ec so its flushes stripe k data + m parity shards.
  bool ec = false;

  std::string Name() const { return "job" + std::to_string(id); }
  /// Total bytes the job writes.
  Bytes TotalBytes() const {
    return static_cast<Bytes>(procs) * bytes_per_rank * static_cast<Bytes>(steps);
  }
  /// Burst-buffer reservation the job asks the cluster scheduler for.
  /// Zero for jobs that never touch the BB (Lustre, PFS-direct).
  Bytes BbDemand() const {
    if (system == JobSystem::kLustre || first_layer >= 3) return 0;
    return TotalBytes();
  }

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// Per-job QoS outcome, the paper-style tenant metrics (stretch = bounded
/// slowdown against the job's own contention-free solo run).
struct JobQos {
  int id = 0;
  Time arrival = 0;
  Time start = -1;   // -1 while queued
  Time finish = -1;  // -1 while running or queued
  Time solo_time = 0;
  Bytes bb_demand = 0;
  Bytes bb_granted = 0;
  int nodes_granted = 0;
  Bytes bytes_written = 0;
  Bytes lost_bytes = 0;
  /// Seconds the job's flush drain took beyond its solo-run drain: BB
  /// drain-interference from co-running tenants.
  Time drain_interference = 0;

  bool started() const { return start >= 0; }
  bool completed() const { return finish >= 0; }
  Time wait() const { return started() ? start - arrival : -1; }
  Time turnaround() const { return completed() ? finish - arrival : -1; }
  double stretch() const {
    if (!completed()) return -1;
    return turnaround() / (solo_time > 0 ? solo_time : 1e-9);
  }
};

/// Mix-level QoS rollup. Percentiles are exact (sorted-sample) so two runs
/// of the same seed compare bit-identically.
struct QosSummary {
  int jobs = 0;
  int completed = 0;
  double mean_stretch = 0;
  double p50_stretch = 0;
  double p99_stretch = 0;
  double mean_wait = 0;
  double p99_wait = 0;
  Time total_drain_interference = 0;
};

QosSummary Summarize(const std::vector<JobQos>& qos);

/// Exact empirical quantile of `values` (q in [0,1]; nearest-rank).
double Quantile(std::vector<double> values, double q);

}  // namespace uvs::cluster
