#include "src/cluster/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "src/fault/injector.hpp"
#include "src/obs/recorder.hpp"
#include "src/sim/worker_pool.hpp"

namespace uvs::cluster {

namespace {

hw::Layer FirstLayer(int layer) {
  switch (layer) {
    case 2: return hw::Layer::kSharedBurstBuffer;
    case 3: return hw::Layer::kPfs;
    default: return hw::Layer::kDram;
  }
}

std::string FmtDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Memoization key: every job field that shapes the solo run.
std::string SoloKey(const JobSpec& spec, int width, Bytes bb_grant) {
  return std::string(JobKindName(spec.kind)) + "/" + JobSystemName(spec.system) + "/p" +
         std::to_string(spec.procs) + "/b" + std::to_string(spec.bytes_per_rank) + "/s" +
         std::to_string(spec.steps) + "/c" + FmtDouble(spec.compute_time) + "/l" +
         std::to_string(spec.first_layer) + "/w" + std::to_string(width) + "/g" +
         std::to_string(bb_grant) + "/e" + (spec.ec ? "1" : "0");
}

}  // namespace

ClusterSim::ClusterSim(workload::Scenario& scenario, std::vector<JobSpec> jobs,
                       ClusterOptions options)
    : scenario_(&scenario), options_(std::move(options)) {
  jobs_.reserve(jobs.size());
  for (JobSpec& spec : jobs) {
    JobState state;
    state.spec = std::move(spec);
    state.start_event = std::make_unique<sim::Event>(scenario.engine());
    jobs_.push_back(std::move(state));
  }
  qos_.resize(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) qos_[i].id = jobs_[i].spec.id;
  const auto nodes = static_cast<std::size_t>(scenario.cluster().node_count());
  node_free_.assign(nodes, 1);
  node_alive_.assign(nodes, 1);
  bb_capacity_ = scenario.cluster().burst_buffer().total_capacity();
  if (options_.telemetry.enabled) {
    if (options_.telemetry.slos.empty()) options_.telemetry.slos = obs::DefaultSloSpecs();
    for (const obs::SloSpec& spec : options_.telemetry.slos) cluster_slos_.emplace_back(spec);
    job_slo_violated_.assign(jobs_.size(), 0);
  }
}

ClusterSim::~ClusterSim() {
  // The prune hook captures `this`; never leave it dangling on a recorder
  // that outlives the sim.
  if (prune_hook_set_)
    if (obs::Recorder* rec = obs::Recorder::Current()) rec->SetPruneHook(nullptr);
}

void ClusterSim::AttachInjector(fault::Injector& injector) {
  injector_ = &injector;
  injector.set_cluster(&scenario_->cluster());
  injector.AddCrashHandler([this](int node) { OnNodeCrash(node); });
}

int ClusterSim::AliveNodes() const {
  int alive = 0;
  for (char a : node_alive_) alive += a != 0;
  return alive;
}

int ClusterSim::NodesNeeded(const JobSpec& spec) const {
  const int ppn = std::max(options_.procs_per_node, 1);
  const int want = (spec.procs + ppn - 1) / ppn;
  return std::clamp(want, 1, std::max(AliveNodes(), 1));
}

Bytes ClusterSim::ClampedDemand(const JobSpec& spec) const {
  return std::min(spec.BbDemand(), bb_capacity_);
}

const univistor::UniviStor* ClusterSim::system(int job) const {
  return jobs_.at(static_cast<std::size_t>(job)).system.get();
}

bool ClusterSim::JobOnNode(int job, int node) const {
  const std::vector<int>& nodes = jobs_.at(static_cast<std::size_t>(job)).nodes;
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

Time ClusterSim::StarvationHorizon() const {
  Time last_arrival = 0;
  Time serial = 0;
  for (const JobState& job : jobs_) {
    last_arrival = std::max(last_arrival, job.spec.arrival);
    serial += std::max(job.solo_elapsed, 1e-3);
  }
  // Serial-execution bound with a generous contention allowance: even a
  // policy that runs every job alone, back to back, with each run inflated
  // 20x by spill and interference, finishes inside this horizon.
  return last_arrival + 10.0 + 20.0 * serial;
}

ClusterSim::SoloShape ClusterSim::ShapeOf(const JobSpec& spec) const {
  const int ppn = std::max(options_.procs_per_node, 1);
  SoloShape shape;
  shape.width = std::clamp((spec.procs + ppn - 1) / ppn, 1,
                           scenario_->cluster().node_count());
  shape.bb_grant = ClampedDemand(spec);
  shape.key = SoloKey(spec, shape.width, shape.bb_grant);
  return shape;
}

void ClusterSim::WarmSoloBaselines() { PrecomputeSolo(); }

void ClusterSim::PrecomputeSolo() {
  if (solo_warmed_) return;
  solo_warmed_ = true;
  // Solo baselines run in private engines; keep their spans and metrics
  // out of the main run's recorder. (The binding is thread-local, so pool
  // workers below start with no recorder either way — uninstalling here
  // keeps the serial in-thread path identical.)
  obs::Recorder* recorder = obs::Recorder::Current();
  if (recorder != nullptr) recorder->Uninstall();

  // Distinct job shapes in first-appearance order. Each is one independent
  // contention-free run on a private engine — the worker-pool task unit.
  std::vector<SoloShape> shapes;
  std::vector<const JobSpec*> specs;
  for (const JobState& job : jobs_) {
    SoloShape shape = ShapeOf(job.spec);
    if (solo_memo_.find(shape.key) != solo_memo_.end()) continue;
    bool seen = false;
    for (const SoloShape& s : shapes) seen = seen || s.key == shape.key;
    if (seen) continue;
    specs.push_back(&job.spec);
    shapes.push_back(std::move(shape));
  }

  const int requested =
      options_.solo_workers == 0 ? sim::WorkerPool::HardwareThreads() : options_.solo_workers;
  const int workers = std::min<int>(requested, static_cast<int>(shapes.size()));
  if (workers > 1) {
    sim::WorkerPool pool(workers);
    const std::vector<SoloStats> stats = sim::ParallelMap<SoloStats>(
        pool, shapes.size(), [this, &shapes, &specs](std::size_t i) {
          return SoloRunUncached(*specs[i], shapes[i]);
        });
    // Merge in first-appearance order: each entry is a pure function of its
    // key, so the memo — and everything scheduled off it — is bit-identical
    // to the serial path.
    for (std::size_t i = 0; i < shapes.size(); ++i)
      solo_memo_.emplace(shapes[i].key, stats[i]);
  } else {
    for (std::size_t i = 0; i < shapes.size(); ++i)
      solo_memo_.emplace(shapes[i].key, SoloRunUncached(*specs[i], shapes[i]));
  }

  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const SoloStats& stats = solo_memo_.at(ShapeOf(jobs_[i].spec).key);
    jobs_[i].solo_elapsed = stats.elapsed;
    jobs_[i].solo_flush_wait = stats.flush_wait;
    qos_[i].solo_time = stats.elapsed;
  }
  if (recorder != nullptr) recorder->Install();
}

ClusterSim::SoloStats ClusterSim::SoloRunUncached(const JobSpec& spec, const SoloShape& shape) {
  const int width = shape.width;
  const Bytes bb_grant = shape.bb_grant;

  workload::ScenarioOptions opts;
  opts.procs = scenario_->options().procs;
  opts.policy = scenario_->options().policy;
  opts.workflow_enabled = scenario_->options().workflow_enabled;
  opts.cluster_params = scenario_->cluster().params();
  workload::Scenario solo(opts);

  JobState job;
  job.spec = spec;
  job.spec.arrival = 0;
  job.nodes.resize(static_cast<std::size_t>(width));
  for (int n = 0; n < width; ++n) job.nodes[static_cast<std::size_t>(n)] = n;
  job.bb_grant = bb_grant;

  solo.engine().Spawn(ExecuteJob(solo, job, /*live=*/false), "solo-" + spec.Name());
  solo.engine().Run();

  SoloStats stats;
  stats.elapsed = job.finished >= 0 ? job.finished : solo.engine().Now();
  // Contention-free drain baseline: total seconds this job's flushes (BB ->
  // PFS drains, including the flush-on-close wait) take when it runs alone.
  stats.flush_wait = job.system != nullptr ? job.system->flush_stats().total_flush_time : 0;
  return stats;
}

void ClusterSim::Run() {
  PrecomputeSolo();
  // Tail-based retention: installed after PrecomputeSolo (which swaps the
  // recorder out around the solo baselines) so the hook sees the live run.
  if (options_.telemetry.enabled)
    if (obs::Recorder* rec = obs::Recorder::Current()) {
      rec->SetPruneHook([this](obs::Recorder& r) { return PruneSpans(r); });
      prune_hook_set_ = true;
    }
  sim::Engine& engine = scenario_->engine();
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const int idx = static_cast<int>(i);
    engine.Schedule(jobs_[i].spec.arrival, [this, idx] {
      scenario_->engine().Spawn(JobLifecycle(idx),
                                "cluster-" + jobs_[static_cast<std::size_t>(idx)].spec.Name());
    });
  }
  engine.Run();
}

sim::Task ClusterSim::JobLifecycle(int idx) {
  JobState& job = jobs_[static_cast<std::size_t>(idx)];
  JobQos& qos = qos_[static_cast<std::size_t>(idx)];
  sim::Engine& engine = scenario_->engine();

  ++arrived_;
  obs::Count("cluster.jobs_arrived");
  qos.arrival = engine.Now();
  obs::FlightNote(qos.arrival, "cluster", "arrive " + job.spec.Name(),
                  static_cast<double>(job.spec.procs), TenantKey(job.spec));
  {
    obs::SpanTimer pending_span(engine, "cluster", "job.pending",
                                obs::Track::ClusterJob(job.spec.id));
    EnqueueAndSchedule(idx);
    co_await job.start_event->Wait();
  }

  qos.start = engine.Now();
  qos.bb_granted = job.bb_grant;
  qos.nodes_granted = static_cast<int>(job.nodes.size());
  obs::Count("cluster.jobs_started");
  {
    obs::SpanTimer run_span(engine, "cluster", "job.run", obs::Track::ClusterJob(job.spec.id),
                            job.spec.TotalBytes());
    co_await ExecuteJob(*scenario_, job, /*live=*/true);
  }
  OnJobFinish(idx);
}

sim::Task ClusterSim::ExecuteJob(workload::Scenario& sc, JobState& job, bool live) {
  const JobSpec& spec = job.spec;
  vmpi::AdioDriver* driver = nullptr;
  if (spec.system == JobSystem::kUniviStor) {
    univistor::Config cfg = options_.base_config;
    cfg.first_cache_layer = FirstLayer(spec.first_layer);
    // A zero grant must mean "no BB layer", but bb_capacity_limit == 0
    // means "the whole BB" — 1 byte is below any chunk size, so the
    // cascade drops the BB log and spills to the PFS instead.
    cfg.bb_capacity_limit = std::max<Bytes>(job.bb_grant, 1);
    // Per-job EC opt-in layers onto the base config's shard counts (which
    // default to 4+2; Pfs::Create clamps to the machine's OST count).
    if (spec.ec) cfg.ec.enabled = true;
    job.system =
        std::make_unique<univistor::UniviStor>(sc.runtime(), sc.pfs(), sc.workflow(), cfg);
    if (live) {
      for (int n = 0; n < static_cast<int>(node_alive_.size()); ++n)
        if (node_alive_[static_cast<std::size_t>(n)] == 0) job.system->FailNode(n);
      if (injector_ != nullptr) job.system->AttachFaults(injector_);
    }
    job.uvs_driver = std::make_unique<univistor::UniviStorDriver>(*job.system);
    driver = job.uvs_driver.get();
  } else {
    baselines::LustreDriver::Options opt;
    opt.stripe.stripe_count = sc.pfs().ost_count();
    job.lustre_driver =
        std::make_unique<baselines::LustreDriver>(sc.runtime(), sc.pfs(), opt);
    driver = job.lustre_driver.get();
  }

  job.program = sc.runtime().LaunchProgramOn(spec.Name(), spec.procs, job.nodes);
  if (live) {
    // Rank-span attribution for the tail-retention prune hook; solo
    // baseline programs run on private engines and never get here.
    program_job_[job.program] = static_cast<int>(&job - jobs_.data());
    obs::FlightNote(sc.engine().Now(), "cluster", "start " + spec.Name(),
                    static_cast<double>(job.nodes.size()));
  }

  if (spec.kind == JobKind::kVpic) {
    workload::VpicParams params;
    params.steps = spec.steps;
    params.vars = 4;
    params.bytes_per_var = std::max<Bytes>(spec.bytes_per_rank / 4, 1);
    params.compute_time = spec.compute_time;
    params.file_prefix = spec.Name();
    job.vpic = std::make_unique<workload::VpicRun>(sc, job.program, *driver, params);
    job.vpic->Start();
    co_await job.vpic->done().Wait();
  } else {
    const bool read_back = spec.kind == JobKind::kMicroReadBack;
    job.files.push_back(std::make_unique<h5lite::H5File>(
        sc.runtime(), job.program, spec.Name() + ".h5", vmpi::FileMode::kWriteOnly, *driver,
        std::vector<h5lite::DatasetSpec>{{"data", 8, spec.bytes_per_rank / 8}}));
    job.ranks_left = spec.procs;
    job.ranks_done = std::make_unique<sim::Event>(sc.engine());
    for (int r = 0; r < spec.procs; ++r)
      sc.engine().Spawn(MicroRank(job, r, read_back),
                        spec.Name() + "-rank" + std::to_string(r));
    co_await job.ranks_done->Wait();
  }
  job.client_done = sc.engine().Now();
  if (job.system != nullptr) co_await job.system->WaitAllFlushes();
  job.finished = sc.engine().Now();
}

sim::Task ClusterSim::MicroRank(JobState& job, int rank, bool read_back) {
  h5lite::H5File& file = *job.files.front();
  co_await file.Open(rank);
  for (int d = 0; d < file.dataset_count(); ++d) co_await file.WriteSlice(rank, d);
  if (read_back)
    for (int d = 0; d < file.dataset_count(); ++d) co_await file.ReadSlice(rank, d);
  co_await file.Close(rank);
  if (--job.ranks_left == 0) job.ranks_done->Trigger();
}

void ClusterSim::EnqueueAndSchedule(int idx) {
  pending_.push_back(idx);
  obs::SetGauge("cluster.queue_depth", static_cast<double>(pending_.size()));
  TrySchedule();
}

void ClusterSim::TrySchedule() {
  if (pending_.empty()) return;
  SchedState state;
  state.now = scenario_->engine().Now();
  for (std::size_t n = 0; n < node_free_.size(); ++n)
    state.free_nodes += node_free_[n] != 0 && node_alive_[n] != 0;
  state.bb_free = bb_capacity_ - bb_reserved_;
  for (int idx : pending_) {
    const JobState& job = jobs_[static_cast<std::size_t>(idx)];
    SchedJob sched;
    sched.id = idx;
    sched.nodes_needed = NodesNeeded(job.spec);
    sched.bb_demand = ClampedDemand(job.spec);
    sched.est_runtime = std::max(job.solo_elapsed, 1e-3) * options_.estimate_fudge;
    state.pending.push_back(sched);
  }
  for (const JobState& job : jobs_) {
    if (!job.started || job.completed) continue;
    RunningJob running;
    running.est_finish = job.est_finish;
    for (int node : job.nodes) running.nodes += node_alive_[static_cast<std::size_t>(node)] != 0;
    running.bb_reserved = job.bb_grant;
    state.running.push_back(running);
  }

  const std::vector<Admission> admissions = Decide(state, options_.policy);
  for (const Admission& adm : admissions) {
    JobState& job = jobs_[static_cast<std::size_t>(adm.id)];
    job.nodes.clear();
    for (std::size_t n = 0; n < node_free_.size() && static_cast<int>(job.nodes.size()) < adm.nodes;
         ++n) {
      if (node_free_[n] == 0 || node_alive_[n] == 0) continue;
      node_free_[n] = 0;
      job.nodes.push_back(static_cast<int>(n));
    }
    assert(static_cast<int>(job.nodes.size()) == adm.nodes);
    job.bb_grant = adm.bb_grant;
    bb_reserved_ += adm.bb_grant;
    peak_bb_reserved_ = std::max(peak_bb_reserved_, bb_reserved_);
    assert(bb_reserved_ <= bb_capacity_);
    job.est_finish =
        state.now + std::max(job.solo_elapsed, 1e-3) * options_.estimate_fudge;
    job.started = true;
    pending_.erase(std::find(pending_.begin(), pending_.end(), adm.id));
    job.start_event->Trigger();
  }
  obs::SetGauge("cluster.queue_depth", static_cast<double>(pending_.size()));
  obs::SetGauge("cluster.bb_reserved_bytes", static_cast<double>(bb_reserved_));
}

void ClusterSim::OnJobFinish(int idx) {
  JobState& job = jobs_[static_cast<std::size_t>(idx)];
  JobQos& qos = qos_[static_cast<std::size_t>(idx)];
  job.completed = true;
  ++completed_;
  qos.finish = scenario_->engine().Now();
  // Seconds this job's flush drains took beyond its contention-free solo
  // drains: BB drain interference from co-running tenants.
  const Time drain = job.system != nullptr ? job.system->flush_stats().total_flush_time
                                           : (job.client_done >= 0 ? qos.finish - job.client_done : 0);
  qos.drain_interference = std::max(0.0, drain - job.solo_flush_wait);
  if (job.system != nullptr) {
    for (int f = 0; f < job.system->file_count(); ++f)
      qos.bytes_written += job.system->BytesWritten(static_cast<storage::FileId>(f));
    qos.lost_bytes = job.system->lost_bytes();
  } else {
    qos.bytes_written = job.spec.TotalBytes();
  }
  for (int node : job.nodes)
    if (node_alive_[static_cast<std::size_t>(node)] != 0)
      node_free_[static_cast<std::size_t>(node)] = 1;
  assert(bb_reserved_ >= job.bb_grant);
  bb_reserved_ -= job.bb_grant;
  obs::Count("cluster.jobs_completed");
  obs::Observe("cluster.stretch", qos.stretch());
  obs::Observe("cluster.wait", qos.wait());
  obs::SetGauge("cluster.bb_reserved_bytes", static_cast<double>(bb_reserved_));
  obs::FlightNote(qos.finish, "cluster", "finish " + job.spec.Name(), qos.stretch(),
                  TenantKey(job.spec));
  RecordTelemetry(idx);
  TrySchedule();
}

std::string ClusterSim::TenantKey(const JobSpec& spec) {
  return std::string(JobSystemName(spec.system)) + "/" + JobKindName(spec.kind);
}

void ClusterSim::RecordTelemetry(int idx) {
  if (!options_.telemetry.enabled) return;
  const JobState& job = jobs_[static_cast<std::size_t>(idx)];
  const JobQos& qos = qos_[static_cast<std::size_t>(idx)];
  const Time now = qos.finish;
  const std::string tenant = TenantKey(job.spec);
  auto [it, inserted] = tenants_.try_emplace(tenant, options_.telemetry.sketch_error);
  TenantTelemetry& tt = it->second;
  if (inserted)
    for (const obs::SloSpec& spec : options_.telemetry.slos) tt.slos.emplace_back(spec);

  tt.stretch.Add(qos.stretch());
  tt.wait.Add(qos.wait());

  bool violated = false;
  for (std::size_t s = 0; s < options_.telemetry.slos.size(); ++s) {
    const obs::SloSpec& spec = options_.telemetry.slos[s];
    double value = 0.0;
    if (spec.metric == "stretch") value = qos.stretch();
    else if (spec.metric == "wait") value = qos.wait();
    else if (spec.metric == "lost") value = static_cast<double>(qos.lost_bytes);
    cluster_slos_[s].Record(now, value);
    const bool bad = tt.slos[s].Record(now, value);
    const std::string label = spec.Label();
    obs::Count(("cluster.slo." + label + (bad ? ".bad" : ".good")).c_str());
    if (bad) {
      violated = true;
      obs::FlightNote(now, "slo", label + " " + job.spec.Name(), value, tenant);
    }
  }
  job_slo_violated_[static_cast<std::size_t>(idx)] = violated ? 1 : 0;
}

int ClusterSim::SpanJob(const obs::Track& track) const {
  if (!track.is_rank()) return -1;
  const auto it = program_job_.find(track.rank_program());
  return it == program_job_.end() ? -1 : it->second;
}

std::size_t ClusterSim::PruneSpans(obs::Recorder& rec) {
  // Tail-based retention: under the span cap, full rank-level span sets
  // are kept only for interesting jobs — still-running ones, the worst
  // stretch decile so far, and SLO violators. Everything else keeps its
  // two lifecycle spans (pending/run) and loses the rank detail.
  std::vector<double> stretches;
  for (const JobQos& qos : qos_)
    if (qos.completed()) stretches.push_back(qos.stretch());
  if (stretches.empty()) return 0;
  const double cutoff = Quantile(stretches, 0.9);

  std::vector<char> boring(jobs_.size(), 0);
  bool any = false;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const JobQos& qos = qos_[i];
    if (!qos.completed()) continue;
    if (qos.stretch() >= cutoff) continue;
    if (job_slo_violated_[i] != 0) continue;
    boring[i] = 1;
    any = true;
  }
  if (!any) return 0;

  const std::size_t freed = rec.EraseSpansIf([this, &boring](const obs::Recorder::SpanEvent& s) {
    const int j = SpanJob(s.track);
    return j >= 0 && boring[static_cast<std::size_t>(j)] != 0;
  });
  if (freed > 0) obs::Count("cluster.spans_pruned", freed);
  return freed;
}

const obs::QuantileSketch* ClusterSim::TenantStretchSketch(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second.stretch;
}

obs::QuantileSketch ClusterSim::ClusterStretchSketch() const {
  obs::QuantileSketch merged(options_.telemetry.sketch_error);
  for (const auto& [tenant, tt] : tenants_) merged.Merge(tt.stretch);
  return merged;
}

obs::QuantileSketch ClusterSim::ClusterWaitSketch() const {
  obs::QuantileSketch merged(options_.telemetry.sketch_error);
  for (const auto& [tenant, tt] : tenants_) merged.Merge(tt.wait);
  return merged;
}

std::string ClusterSim::TelemetryJson() const {
  std::string out = "{\"schema\":\"univistor.telemetry.v1\"";
  out += ",\"relative_error\":" + FmtDouble(options_.telemetry.sketch_error);
  out += ",\"tenants\":{";
  bool first = true;
  for (const auto& [tenant, tt] : tenants_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + tenant + "\":{\"stretch\":" + tt.stretch.ToJson() +
           ",\"wait\":" + tt.wait.ToJson() + "}";
  }
  out += "},\"cluster\":{\"stretch\":" + ClusterStretchSketch().ToJson() +
         ",\"wait\":" + ClusterWaitSketch().ToJson() + "}}";
  return out;
}

std::string ClusterSim::SloJson() const {
  std::string out = "{\"schema\":\"univistor.slo.v1\",\"cluster\":[";
  for (std::size_t s = 0; s < cluster_slos_.size(); ++s) {
    if (s > 0) out += ",";
    out += cluster_slos_[s].ToJson();
  }
  out += "],\"tenants\":{";
  bool first = true;
  for (const auto& [tenant, tt] : tenants_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + tenant + "\":[";
    for (std::size_t s = 0; s < tt.slos.size(); ++s) {
      if (s > 0) out += ",";
      out += tt.slos[s].ToJson();
    }
    out += "]";
  }
  out += "}}";
  return out;
}

void ClusterSim::OnNodeCrash(int node) {
  if (node < 0 || node >= static_cast<int>(node_alive_.size())) return;
  if (node_alive_[static_cast<std::size_t>(node)] == 0) return;
  node_alive_[static_cast<std::size_t>(node)] = 0;
  node_free_[static_cast<std::size_t>(node)] = 0;
  obs::Count("cluster.node_crashes");
  // Only jobs actually placed on the crashed node lose extents; everyone
  // else keeps running untouched (the multi-tenant crash-targeting fix).
  for (JobState& job : jobs_) {
    if (!job.started || job.system == nullptr) continue;
    if (std::find(job.nodes.begin(), job.nodes.end(), node) == job.nodes.end()) continue;
    job.system->FailNode(node);
  }
  TrySchedule();
}

std::string ClusterSim::JobTraceJson() const {
  std::string out;
  out += "{\"schema\":\"uvs-cluster-trace-v1\",";
  out += "\"policy\":\"" + std::string(PolicyName(options_.policy)) + "\",";
  out += "\"nodes\":" + std::to_string(node_alive_.size()) + ",";
  out += "\"bb_capacity\":" + std::to_string(bb_capacity_) + ",";
  out += "\"peak_bb_reserved\":" + std::to_string(peak_bb_reserved_) + ",";
  out += "\"jobs\":[";
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const JobState& job = jobs_[i];
    const JobQos& qos = qos_[i];
    if (i > 0) out += ",";
    out += "{\"id\":" + std::to_string(job.spec.id);
    out += ",\"name\":\"" + job.spec.Name() + "\"";
    out += ",\"kind\":\"" + std::string(JobKindName(job.spec.kind)) + "\"";
    out += ",\"system\":\"" + std::string(JobSystemName(job.spec.system)) + "\"";
    out += ",\"procs\":" + std::to_string(job.spec.procs);
    out += ",\"bytes_per_rank\":" + std::to_string(job.spec.bytes_per_rank);
    out += ",\"steps\":" + std::to_string(job.spec.steps);
    out += ",\"first_layer\":" + std::to_string(job.spec.first_layer);
    out += ",\"arrival\":" + FmtDouble(qos.arrival);
    out += ",\"start\":" + FmtDouble(qos.start);
    out += ",\"finish\":" + FmtDouble(qos.finish);
    out += ",\"solo\":" + FmtDouble(qos.solo_time);
    out += ",\"wait\":" + FmtDouble(qos.wait());
    out += ",\"stretch\":" + FmtDouble(qos.stretch());
    out += ",\"bb_demand\":" + std::to_string(ClampedDemand(job.spec));
    out += ",\"bb_granted\":" + std::to_string(qos.bb_granted);
    out += ",\"nodes\":[";
    for (std::size_t n = 0; n < job.nodes.size(); ++n) {
      if (n > 0) out += ",";
      out += std::to_string(job.nodes[n]);
    }
    out += "]";
    out += ",\"bytes_written\":" + std::to_string(qos.bytes_written);
    out += ",\"lost_bytes\":" + std::to_string(qos.lost_bytes);
    out += ",\"drain_interference\":" + FmtDouble(qos.drain_interference);
    out += "}";
  }
  out += "],";
  const QosSummary s = summary();
  out += "\"qos\":{\"jobs\":" + std::to_string(s.jobs);
  out += ",\"completed\":" + std::to_string(s.completed);
  out += ",\"mean_stretch\":" + FmtDouble(s.mean_stretch);
  out += ",\"p50_stretch\":" + FmtDouble(s.p50_stretch);
  out += ",\"p99_stretch\":" + FmtDouble(s.p99_stretch);
  out += ",\"mean_wait\":" + FmtDouble(s.mean_wait);
  out += ",\"p99_wait\":" + FmtDouble(s.p99_wait);
  out += ",\"drain_interference\":" + FmtDouble(s.total_drain_interference);
  out += "}}";
  return out;
}

}  // namespace uvs::cluster
