#include "src/cluster/job.hpp"

#include <algorithm>
#include <cmath>

namespace uvs::cluster {

const char* JobKindName(JobKind kind) {
  switch (kind) {
    case JobKind::kMicroWrite: return "micro";
    case JobKind::kMicroReadBack: return "micro_read";
    case JobKind::kVpic: return "vpic";
  }
  return "?";
}

const char* JobSystemName(JobSystem system) {
  switch (system) {
    case JobSystem::kUniviStor: return "univistor";
    case JobSystem::kLustre: return "lustre";
  }
  return "?";
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  idx = std::clamp<std::size_t>(idx, 1, values.size()) - 1;
  return values[idx];
}

QosSummary Summarize(const std::vector<JobQos>& qos) {
  QosSummary s;
  s.jobs = static_cast<int>(qos.size());
  std::vector<double> stretches;
  std::vector<double> waits;
  for (const JobQos& j : qos) {
    if (!j.completed()) continue;
    ++s.completed;
    stretches.push_back(j.stretch());
    waits.push_back(j.wait());
    s.total_drain_interference += j.drain_interference;
  }
  if (s.completed == 0) return s;
  for (double v : stretches) s.mean_stretch += v;
  s.mean_stretch /= static_cast<double>(stretches.size());
  for (double v : waits) s.mean_wait += v;
  s.mean_wait /= static_cast<double>(waits.size());
  s.p50_stretch = Quantile(stretches, 0.5);
  s.p99_stretch = Quantile(stretches, 0.99);
  s.p99_wait = Quantile(waits, 0.99);
  return s;
}

}  // namespace uvs::cluster
