#include "src/cluster/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace uvs::cluster {

namespace {

/// Exponential interarrival draw (inverse CDF on a (0,1] uniform so the
/// log argument never hits zero).
Time Exponential(Rng& rng, Time mean) {
  const double u = 1.0 - rng.NextDouble();
  return -mean * std::log(u);
}

template <typename T>
T Pick(Rng& rng, std::initializer_list<T> menu) {
  return *(menu.begin() + rng.NextBelow(menu.size()));
}

bool Chance(Rng& rng, double p) { return rng.NextDouble() < p; }

}  // namespace

std::vector<JobSpec> SampleJobMix(std::uint64_t seed, const MixParams& params) {
  Rng rng(seed ^ 0xc1057e2aull);
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(params.jobs));
  Time clock = 0;
  for (int i = 0; i < params.jobs; ++i) {
    JobSpec job;
    job.id = i;
    job.arrival = clock;
    if (params.mean_interarrival > 0) clock += Exponential(rng, params.mean_interarrival);

    const double kind_draw = rng.NextDouble();
    job.kind = kind_draw < 0.4   ? JobKind::kMicroWrite
               : kind_draw < 0.7 ? JobKind::kMicroReadBack
                                 : JobKind::kVpic;
    job.system = Chance(rng, params.lustre_fraction) ? JobSystem::kLustre
                                                     : JobSystem::kUniviStor;
    job.procs = Pick(rng, {2, 4, 8});
    job.bytes_per_rank = Pick<Bytes>(rng, {1_MiB, 2_MiB, 4_MiB, 8_MiB});
    job.steps = job.kind == JobKind::kVpic ? Pick(rng, {1, 2, 3}) : 1;
    job.compute_time = job.kind == JobKind::kVpic && Chance(rng, 0.5) ? 0.001 : 0.0;
    if (job.system == JobSystem::kUniviStor) {
      // BB-bound mixes mostly start at the burst buffer; balanced mixes
      // mostly run the DRAM cascade.
      job.first_layer = Chance(rng, params.bb_bound ? 0.9 : 0.25) ? 2 : 0;
    }
    jobs.push_back(job);
  }
  // Appended second pass (sampler stability: zero extra draws for classic
  // mixes, and historical seeds keep their jobs when ec_fraction is 0).
  if (params.ec_fraction > 0) {
    for (JobSpec& job : jobs) {
      if (job.system != JobSystem::kUniviStor) continue;
      job.ec = Chance(rng, params.ec_fraction);
    }
  }
  return jobs;
}

Result<JobSpec> ParseJobLine(const std::string& line) {
  JobSpec job;
  bool have_at = false;
  bool have_procs = false;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos)
      return InvalidArgumentError("job token without '=': " + token);
    const std::string key = token.substr(0, eq);
    const std::string val = token.substr(eq + 1);
    try {
      if (key == "at") {
        job.arrival = std::stod(val);
        have_at = true;
      } else if (key == "kind") {
        if (val == "micro") job.kind = JobKind::kMicroWrite;
        else if (val == "micro_read") job.kind = JobKind::kMicroReadBack;
        else if (val == "vpic") job.kind = JobKind::kVpic;
        else return InvalidArgumentError("unknown job kind: " + val);
      } else if (key == "system") {
        if (val == "univistor") job.system = JobSystem::kUniviStor;
        else if (val == "lustre") job.system = JobSystem::kLustre;
        else return InvalidArgumentError("unknown job system: " + val);
      } else if (key == "procs") {
        job.procs = std::stoi(val);
        have_procs = true;
      } else if (key == "mb") {
        job.bytes_per_rank = static_cast<Bytes>(std::stoull(val)) * 1_MiB;
      } else if (key == "steps") {
        job.steps = std::stoi(val);
      } else if (key == "compute") {
        job.compute_time = std::stod(val);
      } else if (key == "layer") {
        job.first_layer = std::stoi(val);
      } else if (key == "ec") {
        job.ec = std::stoi(val) != 0;
      } else {
        return InvalidArgumentError("unknown job key: " + key);
      }
    } catch (const std::exception&) {
      return InvalidArgumentError("bad value for " + key + ": " + val);
    }
  }
  if (!have_at || !have_procs)
    return InvalidArgumentError("job line needs at= and procs=: " + line);
  if (job.arrival < 0 || job.procs < 1 || job.steps < 1 || job.bytes_per_rank < 1 ||
      job.first_layer < 0 || job.first_layer > 3)
    return InvalidArgumentError("job values out of range: " + line);
  return job;
}

Result<std::vector<JobSpec>> ParseJobTrace(const std::string& text) {
  std::vector<JobSpec> jobs;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Result<JobSpec> job = ParseJobLine(line);
    if (!job.ok()) return job.status();
    job->id = static_cast<int>(jobs.size());
    jobs.push_back(*std::move(job));
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const JobSpec& a, const JobSpec& b) { return a.arrival < b.arrival; });
  return jobs;
}

}  // namespace uvs::cluster
