#include "src/cluster/scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace uvs::cluster {

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kFcfs: return "fcfs";
    case Policy::kEasyBackfill: return "easy";
    case Policy::kBbAware: return "bb";
  }
  return "?";
}

Result<Policy> ParsePolicy(const std::string& name) {
  if (name == "fcfs") return Policy::kFcfs;
  if (name == "easy") return Policy::kEasyBackfill;
  if (name == "bb") return Policy::kBbAware;
  return InvalidArgumentError("unknown cluster policy: " + name +
                              " (want fcfs|easy|bb)");
}

namespace {

/// Reservation for a blocked head job: walk running jobs in estimated
/// finish order accumulating released nodes (and BB bytes) until the head
/// fits. Returns the shadow time plus the nodes/BB spare at that moment
/// beyond the head's own needs — the room backfill may use past the
/// shadow. When even all running jobs' resources cannot satisfy the head
/// (it wants more than the machine has), there is no reservation to
/// protect and backfill is unconstrained.
struct Reservation {
  bool exists = false;
  Time shadow = 0;
  int spare_nodes = 0;
  Bytes spare_bb = 0;
};

Reservation ReserveHead(const SchedState& state, const SchedJob& head, bool bb_aware) {
  std::vector<RunningJob> order = state.running;
  std::stable_sort(order.begin(), order.end(),
                   [](const RunningJob& a, const RunningJob& b) {
                     return a.est_finish < b.est_finish;
                   });
  int nodes = state.free_nodes;
  Bytes bb = state.bb_free;
  for (const RunningJob& run : order) {
    if (nodes >= head.nodes_needed && (!bb_aware || bb >= head.bb_demand)) break;
    nodes += run.nodes;
    bb += run.bb_reserved;
    if (nodes >= head.nodes_needed && (!bb_aware || bb >= head.bb_demand)) {
      Reservation res;
      res.exists = true;
      res.shadow = std::max(run.est_finish, state.now);
      res.spare_nodes = nodes - head.nodes_needed;
      res.spare_bb = bb_aware ? bb - head.bb_demand : bb;
      return res;
    }
  }
  return {};
}

}  // namespace

std::vector<Admission> Decide(const SchedState& state, Policy policy) {
  const bool bb_aware = policy == Policy::kBbAware;
  std::vector<Admission> admissions;
  int free_nodes = state.free_nodes;
  Bytes bb_free = state.bb_free;

  auto admit = [&](const SchedJob& job) {
    Admission adm;
    adm.id = job.id;
    adm.nodes = job.nodes_needed;
    adm.bb_grant = bb_aware ? job.bb_demand : std::min(job.bb_demand, bb_free);
    assert(adm.nodes <= free_nodes && adm.bb_grant <= bb_free);
    free_nodes -= adm.nodes;
    bb_free -= adm.bb_grant;
    admissions.push_back(adm);
  };

  // In-order phase: admit from the head while it fits.
  std::size_t head = 0;
  while (head < state.pending.size()) {
    const SchedJob& job = state.pending[head];
    if (job.nodes_needed > free_nodes || (bb_aware && job.bb_demand > bb_free)) break;
    admit(job);
    ++head;
  }
  if (policy == Policy::kFcfs || head >= state.pending.size()) return admissions;

  // Backfill phase: the head is blocked; compute its reservation over the
  // running set (including jobs just admitted in-order), then fill around
  // it. A backfill job either drains before the shadow time or fits the
  // spare capacity beyond the head's needs — spare is consumed as jobs
  // take it so two backfills cannot claim the same room.
  SchedState after = state;
  after.free_nodes = free_nodes;
  after.bb_free = bb_free;
  for (std::size_t i = 0; i < admissions.size(); ++i)
    after.running.push_back(RunningJob{state.now + state.pending[i].est_runtime,
                                       admissions[i].nodes, admissions[i].bb_grant});

  Reservation res = ReserveHead(after, state.pending[head], bb_aware);
  for (std::size_t i = head + 1; i < state.pending.size(); ++i) {
    const SchedJob& job = state.pending[i];
    if (job.nodes_needed > free_nodes || (bb_aware && job.bb_demand > bb_free)) continue;
    if (res.exists) {
      const bool before_shadow = state.now + job.est_runtime <= res.shadow;
      if (!before_shadow) {
        const bool within_spare = job.nodes_needed <= res.spare_nodes &&
                                  (!bb_aware || job.bb_demand <= res.spare_bb);
        if (!within_spare) continue;
        res.spare_nodes -= job.nodes_needed;
        res.spare_bb -= bb_aware ? job.bb_demand : 0;
      }
    }
    admit(job);
  }
  return admissions;
}

}  // namespace uvs::cluster
