// Multi-tenant cluster simulation: a pending queue + pluggable scheduler
// (scheduler.hpp) driving full per-job storage-system runs over one shared
// simulated machine.
//
// Each admitted job builds its own univistor::UniviStor instance (or
// Lustre baseline driver), launches its client program on the
// scheduler-allocated node subset, runs its workload, and drains its
// flushes; jobs contend physically through the shared burst buffer, OSTs,
// NICs and per-node CPU schedulers. Burst-buffer reservations are
// DataWarp-style per-job grants enforced via Config::bb_capacity_limit —
// a job granted less than it writes spills the excess synchronously to
// the PFS.
//
// QoS per tenant: wait, stretch (turnaround over the job's memoized
// contention-free solo run), and BB drain-interference seconds (flush
// drain beyond the solo drain). Everything is deterministic for a given
// (mix, policy): same seed -> identical job trace JSON.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/baselines/lustre_driver.hpp"
#include "src/cluster/job.hpp"
#include "src/cluster/scheduler.hpp"
#include "src/h5lite/h5file.hpp"
#include "src/sim/event.hpp"
#include "src/univistor/config.hpp"
#include "src/univistor/driver.hpp"
#include "src/univistor/system.hpp"
#include "src/workload/scenario.hpp"
#include "src/workload/vpic.hpp"

namespace uvs::fault {
class Injector;
}

namespace uvs::cluster {

struct ClusterOptions {
  Policy policy = Policy::kBbAware;
  /// Template for every job's UniviStor instance; first_cache_layer and
  /// bb_capacity_limit are overridden per job.
  univistor::Config base_config;
  /// Client ranks per allocated node (nodes_needed = ceil(procs / ppn)).
  int procs_per_node = 4;
  /// Walltime estimate fed to backfill: solo time x fudge.
  double estimate_fudge = 3.0;
};

class ClusterSim {
 public:
  ClusterSim(workload::Scenario& scenario, std::vector<JobSpec> jobs,
             ClusterOptions options);
  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;
  ~ClusterSim();

  /// Routes the injector's node crashes to the jobs actually placed on
  /// the crashed node (and degradation windows to the shared hardware).
  /// Call before Run(); the injector must outlive the ClusterSim.
  void AttachInjector(fault::Injector& injector);

  /// Precomputes solo baselines, schedules arrivals, drains the engine.
  void Run();

  const std::vector<JobQos>& qos() const { return qos_; }
  QosSummary summary() const { return Summarize(qos_); }
  /// Deterministic JSON job trace + QoS rollup (schema
  /// uvs-cluster-trace-v1).
  std::string JobTraceJson() const;

  int job_count() const { return static_cast<int>(jobs_.size()); }
  int arrived_jobs() const { return arrived_; }
  int completed_jobs() const { return completed_; }
  const JobSpec& spec(int job) const { return jobs_.at(static_cast<std::size_t>(job)).spec; }
  /// The job's UniviStor instance; nullptr before start or for Lustre jobs.
  const univistor::UniviStor* system(int job) const;
  const std::vector<int>& job_nodes(int job) const {
    return jobs_.at(static_cast<std::size_t>(job)).nodes;
  }
  bool JobOnNode(int job, int node) const;

  Bytes bb_capacity() const { return bb_capacity_; }
  /// High-water mark of concurrently reserved BB bytes (conservation:
  /// never exceeds bb_capacity()).
  Bytes peak_bb_reserved() const { return peak_bb_reserved_; }
  /// Generous bound by which every job of the mix must have finished (the
  /// starvation invariant): last arrival + a serial-execution bound over
  /// memoized solo times with a contention allowance.
  Time StarvationHorizon() const;

 private:
  /// One job's live storage system + workload state.
  struct JobState {
    JobSpec spec;
    std::vector<int> nodes;   // allocation (node indices)
    Bytes bb_grant = 0;
    Time est_finish = 0;
    Time solo_elapsed = 0;
    Time solo_flush_wait = 0;
    Time client_done = -1;
    Time finished = -1;
    bool started = false;
    bool completed = false;
    std::unique_ptr<sim::Event> start_event;
    std::unique_ptr<univistor::UniviStor> system;
    std::unique_ptr<univistor::UniviStorDriver> uvs_driver;
    std::unique_ptr<baselines::LustreDriver> lustre_driver;
    std::vector<std::unique_ptr<h5lite::H5File>> files;
    std::unique_ptr<workload::VpicRun> vpic;
    vmpi::ProgramId program = -1;
    int ranks_left = 0;
    std::unique_ptr<sim::Event> ranks_done;
  };

  struct SoloStats {
    Time elapsed = 0;
    Time flush_wait = 0;
  };

  int NodesNeeded(const JobSpec& spec) const;
  Bytes ClampedDemand(const JobSpec& spec) const;
  void PrecomputeSolo();
  /// Runs `spec` alone on a private engine with the same cluster params;
  /// memoized by job shape.
  SoloStats SoloRun(const JobSpec& spec);

  sim::Task JobLifecycle(int idx);
  /// Builds the job's system + client program on `sc` and runs the
  /// workload to client completion plus flush drain. `live` wires crashed
  /// nodes and the injector in; solo baselines pass false.
  sim::Task ExecuteJob(workload::Scenario& sc, JobState& job, bool live);
  static sim::Task MicroRank(JobState& job, int rank, bool read_back);

  void EnqueueAndSchedule(int idx);
  void TrySchedule();
  void OnJobFinish(int idx);
  void OnNodeCrash(int node);
  int AliveNodes() const;

  workload::Scenario* scenario_;
  ClusterOptions options_;
  fault::Injector* injector_ = nullptr;

  std::vector<JobState> jobs_;
  std::vector<JobQos> qos_;
  std::vector<int> pending_;  // job indices, arrival order
  std::vector<char> node_free_;
  std::vector<char> node_alive_;
  Bytes bb_capacity_ = 0;
  Bytes bb_reserved_ = 0;
  Bytes peak_bb_reserved_ = 0;
  int arrived_ = 0;
  int completed_ = 0;
  std::map<std::string, SoloStats> solo_memo_;
};

}  // namespace uvs::cluster
