// Multi-tenant cluster simulation: a pending queue + pluggable scheduler
// (scheduler.hpp) driving full per-job storage-system runs over one shared
// simulated machine.
//
// Each admitted job builds its own univistor::UniviStor instance (or
// Lustre baseline driver), launches its client program on the
// scheduler-allocated node subset, runs its workload, and drains its
// flushes; jobs contend physically through the shared burst buffer, OSTs,
// NICs and per-node CPU schedulers. Burst-buffer reservations are
// DataWarp-style per-job grants enforced via Config::bb_capacity_limit —
// a job granted less than it writes spills the excess synchronously to
// the PFS.
//
// QoS per tenant: wait, stretch (turnaround over the job's memoized
// contention-free solo run), and BB drain-interference seconds (flush
// drain beyond the solo drain). Everything is deterministic for a given
// (mix, policy): same seed -> identical job trace JSON.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/baselines/lustre_driver.hpp"
#include "src/cluster/job.hpp"
#include "src/cluster/scheduler.hpp"
#include "src/h5lite/h5file.hpp"
#include "src/obs/sketch.hpp"
#include "src/obs/slo.hpp"
#include "src/sim/event.hpp"
#include "src/univistor/config.hpp"
#include "src/univistor/driver.hpp"
#include "src/univistor/system.hpp"
#include "src/workload/scenario.hpp"
#include "src/workload/vpic.hpp"

namespace uvs::fault {
class Injector;
}

namespace uvs::cluster {

/// Always-on per-tenant telemetry: bounded-memory quantile sketches over
/// stretch/wait per tenant class, SLO burn-rate tracking, and tail-based
/// span retention. Feeding happens at job completion only (pure
/// observation — no engine events, no RNG), so same-seed runs stay
/// bit-identical with telemetry on or off.
struct TelemetryOptions {
  bool enabled = false;
  /// Sketch accuracy (see obs::QuantileSketch).
  double sketch_error = obs::QuantileSketch::kDefaultRelativeError;
  /// SLOs evaluated per tenant class and cluster-wide; empty means
  /// obs::DefaultSloSpecs().
  std::vector<obs::SloSpec> slos;
};

struct ClusterOptions {
  Policy policy = Policy::kBbAware;
  /// Template for every job's UniviStor instance; first_cache_layer and
  /// bb_capacity_limit are overridden per job.
  univistor::Config base_config;
  /// Client ranks per allocated node (nodes_needed = ceil(procs / ppn)).
  int procs_per_node = 4;
  /// Walltime estimate fed to backfill: solo time x fudge.
  double estimate_fudge = 3.0;
  /// Worker threads for the solo-baseline warmup (each distinct job shape
  /// is one full run on a private engine — embarrassingly parallel).
  /// Results merge in deterministic first-appearance order, so cluster
  /// traces, QoS tables and golden digests are bit-identical to the serial
  /// (=1) path at any worker count; 0 means hardware concurrency.
  int solo_workers = 1;
  TelemetryOptions telemetry;
};

class ClusterSim {
 public:
  ClusterSim(workload::Scenario& scenario, std::vector<JobSpec> jobs,
             ClusterOptions options);
  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;
  ~ClusterSim();

  /// Routes the injector's node crashes to the jobs actually placed on
  /// the crashed node (and degradation windows to the shared hardware).
  /// Call before Run(); the injector must outlive the ClusterSim.
  void AttachInjector(fault::Injector& injector);

  /// Precomputes the memoized solo baselines without starting the cluster
  /// run — one full contention-free run per distinct job shape, fanned
  /// across ClusterOptions::solo_workers threads. Run() calls this lazily;
  /// exposed so benches can time the warmup in isolation. Idempotent.
  void WarmSoloBaselines();

  /// Precomputes solo baselines, schedules arrivals, drains the engine.
  void Run();

  const std::vector<JobQos>& qos() const { return qos_; }
  QosSummary summary() const { return Summarize(qos_); }
  /// Deterministic JSON job trace + QoS rollup (schema
  /// uvs-cluster-trace-v1).
  std::string JobTraceJson() const;

  int job_count() const { return static_cast<int>(jobs_.size()); }
  int arrived_jobs() const { return arrived_; }
  int completed_jobs() const { return completed_; }
  const JobSpec& spec(int job) const { return jobs_.at(static_cast<std::size_t>(job)).spec; }
  /// The job's UniviStor instance; nullptr before start or for Lustre jobs.
  const univistor::UniviStor* system(int job) const;
  const std::vector<int>& job_nodes(int job) const {
    return jobs_.at(static_cast<std::size_t>(job)).nodes;
  }
  bool JobOnNode(int job, int node) const;

  // --- telemetry ---------------------------------------------------------
  bool telemetry_enabled() const { return options_.telemetry.enabled; }
  /// Tenant class key a job feeds its telemetry under ("system/kind").
  static std::string TenantKey(const JobSpec& spec);
  /// nullptr before the tenant's first completion (or telemetry off).
  const obs::QuantileSketch* TenantStretchSketch(const std::string& tenant) const;
  /// Cluster-wide distributions, built by Merge()-ing every tenant sketch.
  obs::QuantileSketch ClusterStretchSketch() const;
  obs::QuantileSketch ClusterWaitSketch() const;
  const std::vector<obs::SloTracker>& cluster_slos() const { return cluster_slos_; }
  /// True when any completed job violated any SLO threshold.
  bool JobViolatedSlo(int job) const {
    return job_slo_violated_.at(static_cast<std::size_t>(job)) != 0;
  }
  /// The "telemetry" run-report block (univistor.telemetry.v1): per-tenant
  /// sketch summaries plus the merged cluster-wide rollup. Deterministic.
  std::string TelemetryJson() const;
  /// The "slo" run-report block (univistor.slo.v1): per-tenant and
  /// cluster-wide trackers with burn-rate figures and verdicts.
  std::string SloJson() const;

  Bytes bb_capacity() const { return bb_capacity_; }
  /// High-water mark of concurrently reserved BB bytes (conservation:
  /// never exceeds bb_capacity()).
  Bytes peak_bb_reserved() const { return peak_bb_reserved_; }
  /// Generous bound by which every job of the mix must have finished (the
  /// starvation invariant): last arrival + a serial-execution bound over
  /// memoized solo times with a contention allowance.
  Time StarvationHorizon() const;

 private:
  /// One job's live storage system + workload state.
  struct JobState {
    JobSpec spec;
    std::vector<int> nodes;   // allocation (node indices)
    Bytes bb_grant = 0;
    Time est_finish = 0;
    Time solo_elapsed = 0;
    Time solo_flush_wait = 0;
    Time client_done = -1;
    Time finished = -1;
    bool started = false;
    bool completed = false;
    std::unique_ptr<sim::Event> start_event;
    std::unique_ptr<univistor::UniviStor> system;
    std::unique_ptr<univistor::UniviStorDriver> uvs_driver;
    std::unique_ptr<baselines::LustreDriver> lustre_driver;
    std::vector<std::unique_ptr<h5lite::H5File>> files;
    std::unique_ptr<workload::VpicRun> vpic;
    vmpi::ProgramId program = -1;
    int ranks_left = 0;
    std::unique_ptr<sim::Event> ranks_done;
  };

  struct SoloStats {
    Time elapsed = 0;
    Time flush_wait = 0;
  };

  /// Everything that shapes one solo-baseline run (and its memo key).
  struct SoloShape {
    std::string key;
    int width = 1;        // nodes the solo run spreads over
    Bytes bb_grant = 0;   // clamped BB demand the solo run is granted
  };

  int NodesNeeded(const JobSpec& spec) const;
  Bytes ClampedDemand(const JobSpec& spec) const;
  SoloShape ShapeOf(const JobSpec& spec) const;
  void PrecomputeSolo();
  /// Runs `spec` alone on a private engine with the same cluster params.
  /// Pure (reads only immutable cluster/option state, writes nothing
  /// shared), so distinct shapes run concurrently on pool workers; the
  /// result is a function of the shape alone, never of the thread that
  /// computed it.
  SoloStats SoloRunUncached(const JobSpec& spec, const SoloShape& shape);

  sim::Task JobLifecycle(int idx);
  /// Builds the job's system + client program on `sc` and runs the
  /// workload to client completion plus flush drain. `live` wires crashed
  /// nodes and the injector in; solo baselines pass false.
  sim::Task ExecuteJob(workload::Scenario& sc, JobState& job, bool live);
  static sim::Task MicroRank(JobState& job, int rank, bool read_back);

  void EnqueueAndSchedule(int idx);
  void TrySchedule();
  void OnJobFinish(int idx);
  void OnNodeCrash(int node);
  int AliveNodes() const;

  /// Per-tenant-class telemetry state (key: TenantKey()).
  struct TenantTelemetry {
    obs::QuantileSketch stretch;
    obs::QuantileSketch wait;
    std::vector<obs::SloTracker> slos;  // parallel to options_.telemetry.slos
    explicit TenantTelemetry(double err) : stretch(err), wait(err) {}
  };

  /// Feeds sketches and SLO trackers from job `idx`'s final QoS record.
  /// Pure observation at completion time: no engine events, no RNG.
  void RecordTelemetry(int idx);
  /// Recorder prune hook: drop rank-level spans of completed jobs that are
  /// neither in the worst stretch decile nor SLO violators. Returns spans
  /// freed.
  std::size_t PruneSpans(obs::Recorder& rec);
  /// Job index a span's track belongs to, or -1 if not attributable.
  int SpanJob(const obs::Track& track) const;

  workload::Scenario* scenario_;
  ClusterOptions options_;
  fault::Injector* injector_ = nullptr;

  std::vector<JobState> jobs_;
  std::vector<JobQos> qos_;
  std::vector<int> pending_;  // job indices, arrival order
  std::vector<char> node_free_;
  std::vector<char> node_alive_;
  Bytes bb_capacity_ = 0;
  Bytes bb_reserved_ = 0;
  Bytes peak_bb_reserved_ = 0;
  int arrived_ = 0;
  int completed_ = 0;
  bool solo_warmed_ = false;
  std::map<std::string, SoloStats> solo_memo_;

  // Telemetry (populated only when options_.telemetry.enabled).
  std::map<std::string, TenantTelemetry> tenants_;
  std::vector<obs::SloTracker> cluster_slos_;
  std::vector<char> job_slo_violated_;
  /// Live program id -> job index, for attributing rank spans in the
  /// tail-retention prune hook (solo baseline programs are never entered).
  std::map<int, int> program_job_;
  bool prune_hook_set_ = false;
};

}  // namespace uvs::cluster
