// Pluggable cluster-level job scheduler (distinct from the per-node CPU
// sched::NodeScheduler): decides which pending jobs start now, against
// free compute nodes and — for the BB-aware policy — unreserved
// burst-buffer bytes.
//
// Policies, after the burst-buffer scheduling comparison of
// arXiv 2111.10200:
//   * kFcfs          — strict arrival order; the head blocks the queue
//                      until enough nodes free up. BB-blind: an admitted
//                      job is granted whatever unreserved BB remains
//                      (possibly none — its writes then spill to the PFS).
//   * kEasyBackfill  — FCFS plus EASY backfill: a reservation (shadow
//                      time) is computed for the blocked head from running
//                      jobs' runtime estimates, and later jobs may jump
//                      ahead if they fit free nodes without pushing the
//                      head past its reservation. Still BB-blind.
//   * kBbAware       — EASY structure, but a job is only admitted when its
//                      full BB demand fits the unreserved BB (shadow
//                      accounting covers BB bytes too), so admitted jobs
//                      never spill for lack of reservation.
//
// Decide() is a pure function of the snapshot: same state -> same
// admissions, which is what makes same-seed cluster replays bit-identical.
#pragma once

#include <string>
#include <vector>

#include "src/common/status.hpp"
#include "src/common/units.hpp"

namespace uvs::cluster {

enum class Policy : std::uint8_t { kFcfs, kEasyBackfill, kBbAware };
const char* PolicyName(Policy policy);
Result<Policy> ParsePolicy(const std::string& name);

/// One pending job as the scheduler sees it.
struct SchedJob {
  int id = 0;
  int nodes_needed = 1;
  Bytes bb_demand = 0;
  Time est_runtime = 0;  // walltime estimate (solo time x fudge)
};

/// One running job's footprint.
struct RunningJob {
  Time est_finish = 0;
  int nodes = 0;
  Bytes bb_reserved = 0;
};

/// Scheduler-visible cluster state at one decision point.
struct SchedState {
  Time now = 0;
  int free_nodes = 0;   // alive and unallocated
  Bytes bb_free = 0;    // unreserved BB bytes
  std::vector<SchedJob> pending;   // arrival order
  std::vector<RunningJob> running;
};

/// An admitted job: start it now with this grant. `bb_grant` is the full
/// demand under kBbAware and min(demand, remaining) under the BB-blind
/// policies.
struct Admission {
  int id = 0;
  int nodes = 0;
  Bytes bb_grant = 0;
};

/// Jobs to start now, in admission order. Never admits more nodes or BB
/// bytes than the snapshot has free.
std::vector<Admission> Decide(const SchedState& state, Policy policy);

}  // namespace uvs::cluster
