#include "src/hw/node.hpp"

#include <string>

namespace uvs::hw {

namespace {
std::string PoolName(int node_id, const char* what, int idx = -1) {
  std::string name = "node" + std::to_string(node_id) + "/" + what;
  if (idx >= 0) name += std::to_string(idx);
  return name;
}
}  // namespace

NumaSocket::NumaSocket(sim::Engine& engine, int node_id, int socket_id,
                       const NodeParams& params)
    : socket_id_(socket_id),
      dram_(engine, {.name = PoolName(node_id, "dram", socket_id),
                     .capacity = params.dram_bw_per_socket}) {}

Node::Node(sim::Engine& engine, int id, const NodeParams& params)
    : id_(id),
      params_(params),
      nic_tx_(engine, {.name = PoolName(id, "nic_tx"), .capacity = params.nic_bw}),
      nic_rx_(engine, {.name = PoolName(id, "nic_rx"), .capacity = params.nic_bw}) {
  sockets_.reserve(static_cast<std::size_t>(params.sockets));
  for (int s = 0; s < params.sockets; ++s)
    sockets_.push_back(std::make_unique<NumaSocket>(engine, id, s, params));
  if (params.has_local_ssd) {
    ssd_ = std::make_unique<sim::FairSharePool>(
        engine, sim::FairSharePool::Options{.name = PoolName(id, "ssd"),
                                            .capacity = params.ssd_bw});
  }
}

}  // namespace uvs::hw
