#include "src/hw/probes.hpp"

#include <algorithm>

#include "src/hw/utilization.hpp"

namespace uvs::hw {

void RegisterClusterGauges(obs::Sampler& sampler, Cluster& cluster) {
  sampler.AddSource([&cluster] {
    const UtilizationReport report = CollectUtilization(cluster);
    auto publish = [](const char* bytes_name, const char* busy_name, const char* util_name,
                      const DeviceClassUsage& usage) {
      obs::SetGauge(bytes_name, static_cast<double>(usage.total_bytes));
      obs::SetGauge(busy_name, usage.busy_time);
      obs::SetGauge(util_name, usage.Utilization());
    };
    publish("hw.nic_tx.bytes", "hw.nic_tx.busy_seconds", "hw.nic_tx.utilization",
            report.nic_tx);
    publish("hw.nic_rx.bytes", "hw.nic_rx.busy_seconds", "hw.nic_rx.utilization",
            report.nic_rx);
    publish("hw.dram.bytes", "hw.dram.busy_seconds", "hw.dram.utilization", report.dram);
    publish("hw.bb.bytes", "hw.bb.busy_seconds", "hw.bb.utilization", report.bb);
    publish("hw.ost.bytes", "hw.ost.busy_seconds", "hw.ost.utilization", report.ost);

    // Instantaneous queue depths: how many flows each device class is
    // serving right now (the PFS-contention signal in §II-D).
    std::size_t ost_flows = 0, ost_peak = 0;
    for (int o = 0; o < cluster.pfs().ost_count(); ++o) {
      const std::size_t flows = cluster.pfs().ost(o).active_flows();
      ost_flows += flows;
      ost_peak = std::max(ost_peak, flows);
    }
    obs::SetGauge("hw.ost.active_flows", static_cast<double>(ost_flows));
    obs::SetGauge("hw.ost.max_queue_depth", static_cast<double>(ost_peak));
    std::size_t bb_flows = 0;
    for (int b = 0; b < cluster.burst_buffer().node_count(); ++b)
      bb_flows += cluster.burst_buffer().pool(b).active_flows();
    obs::SetGauge("hw.bb.active_flows", static_cast<double>(bb_flows));
  });
}

}  // namespace uvs::hw
