// Hardware parameter sets for the simulated cluster, with a Cori-like
// preset matching the paper's testbed (§III-A): Cray XC40 Haswell nodes
// (32 cores / 2 NUMA sockets / 128 GB DDR4-2133), a DataWarp shared burst
// buffer, and a Lustre file system with 248 OSTs.
//
// Absolute values are order-of-magnitude calibrations; the reproduction
// targets ratios and trend shapes, not testbed-exact numbers.
#pragma once

#include <cstdint>

#include "src/common/units.hpp"

namespace uvs::hw {

/// Identifies a storage layer in the hierarchy, ordered fastest-first.
/// This ordering is what the DHP spill cascade walks (§II-B1).
enum class Layer : std::uint8_t {
  kDram = 0,
  kNodeLocalSsd = 1,
  kSharedBurstBuffer = 2,
  kPfs = 3,
};

inline constexpr int kLayerCount = 4;
const char* LayerName(Layer layer);

struct NodeParams {
  int cores = 32;
  int sockets = 2;

  /// Peak DRAM bandwidth per NUMA socket (DDR4-2133, 4 channels).
  Bandwidth dram_bw_per_socket = 40.0_GBps;
  /// Effective per-rank rate of the client I/O stack (HDF5 + MPI-IO +
  /// log append + redirection) on a full core; a client's injection is
  /// capped by its CPU share times this.
  Bandwidth per_core_client_io_bw = 0.3_GBps;
  /// Bulk sequential copy rate of a server process on a full core
  /// (flush-time reads of cached logs).
  Bandwidth per_core_server_copy_bw = 6.0_GBps;
  /// DRAM a UniviStor server may use for cached logs on this node (the
  /// rest is application memory). Sized so 5 VPIC time steps fit and 10 do
  /// not, as in §III-C.
  Bytes dram_cache_capacity = 44_GiB;

  /// NIC injection/ejection bandwidth (Aries-like).
  Bandwidth nic_bw = 10.0_GBps;
  Time nic_latency = 2_us;

  /// Optional node-local SSD tier (absent on Cori Haswell; kept for the
  /// DHP cascade, which supports it).
  bool has_local_ssd = false;
  Bandwidth ssd_bw = 2.0_GBps;
  Bytes ssd_capacity = 1_TiB;
  Time ssd_latency = 80_us;
};

struct BurstBufferParams {
  /// Number of DataWarp server nodes allocated to the job.
  int bb_nodes = 8;
  Bandwidth bw_per_bb_node = 6.4_GBps;
  Bytes capacity_per_bb_node = 6_TiB;
  Time latency = 120_us;
  /// Extra per-request fraction lost to extent-lock conflicts when `w`
  /// writers share one striped file on a BB node (DataWarp shared-file
  /// layout). Applied by the storage layer, not here.
  double shared_file_lock_penalty = 0.03;  // multiplies log2(writers)
};

struct PfsParams {
  int osts = 248;
  Bandwidth bw_per_ost = 2.6_GBps;
  Bytes capacity_per_ost = 60_TiB;
  Time latency = 4_ms;
  /// Maximum stripe size the file system accepts (Smax in Eq. 3).
  Bytes max_stripe_size = 1_GiB;
  /// Client/server synchronization cost paid per distinct OST a writer
  /// touches (stripe-count overhead, §II-D).
  Time per_ost_sync_overhead = 5_ms;
  /// Extent-lock penalty factor for shared-file writes (multiplies
  /// log2(writers per file)).
  double shared_file_lock_penalty = 0.85;
};

struct ClusterParams {
  int nodes = 2;
  NodeParams node;
  BurstBufferParams bb;
  PfsParams pfs;

  /// One-way small-message latency for metadata RPCs.
  Time rpc_latency = 8_us;
  /// Server-side CPU time to service one metadata request (HDF5-level
  /// attribute/metadata operations are heavyweight).
  Time rpc_service_time = 30_us;

  std::uint64_t seed = 0x5eed;
};

/// Cori-like cluster sized for `procs` client processes at
/// `procs_per_node` ranks per node (paper default: 32).
ClusterParams CoriPreset(int procs, int procs_per_node = 32);

}  // namespace uvs::hw
