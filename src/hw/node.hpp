// Compute-node model: NUMA sockets with DRAM bandwidth pools, cores, a NIC,
// and an optional node-local SSD.
#pragma once

#include <memory>
#include <vector>

#include "src/hw/params.hpp"
#include "src/sim/fair_share.hpp"

namespace uvs::hw {

/// One NUMA socket: a share of the node's cores and its own memory
/// bandwidth pool. Core c belongs to socket c / (cores / sockets).
class NumaSocket {
 public:
  NumaSocket(sim::Engine& engine, int node_id, int socket_id, const NodeParams& params);

  int socket_id() const { return socket_id_; }
  sim::FairSharePool& dram() { return dram_; }

 private:
  int socket_id_;
  sim::FairSharePool dram_;
};

class Node {
 public:
  Node(sim::Engine& engine, int id, const NodeParams& params);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int id() const { return id_; }
  const NodeParams& params() const { return params_; }
  int cores() const { return params_.cores; }
  int sockets() const { return params_.sockets; }

  NumaSocket& socket(int i) { return *sockets_.at(static_cast<std::size_t>(i)); }
  /// Socket that owns core `core` (cores are split contiguously).
  int SocketOfCore(int core) const { return core / (params_.cores / params_.sockets); }

  sim::FairSharePool& nic_tx() { return nic_tx_; }
  sim::FairSharePool& nic_rx() { return nic_rx_; }

  bool has_local_ssd() const { return ssd_ != nullptr; }
  sim::FairSharePool& local_ssd() { return *ssd_; }

 private:
  int id_;
  NodeParams params_;
  std::vector<std::unique_ptr<NumaSocket>> sockets_;
  sim::FairSharePool nic_tx_;
  sim::FairSharePool nic_rx_;
  std::unique_ptr<sim::FairSharePool> ssd_;
};

}  // namespace uvs::hw
