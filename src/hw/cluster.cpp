#include "src/hw/cluster.hpp"

#include <algorithm>

namespace uvs::hw {

const char* LayerName(Layer layer) {
  switch (layer) {
    case Layer::kDram: return "DRAM";
    case Layer::kNodeLocalSsd: return "NodeSSD";
    case Layer::kSharedBurstBuffer: return "BB";
    case Layer::kPfs: return "PFS";
  }
  return "?";
}

ClusterParams CoriPreset(int procs, int procs_per_node) {
  ClusterParams params;
  params.nodes = std::max(1, (procs + procs_per_node - 1) / procs_per_node);
  // DataWarp grants BB server nodes proportionally to the job size, with a
  // small floor (the paper requests BB allocations per job, §III-A).
  params.bb.bb_nodes = std::clamp(params.nodes / 2, 2, 86);
  return params;
}

Cluster::Cluster(sim::Engine& engine, ClusterParams params)
    : engine_(&engine), params_(params), rng_(params.seed) {
  nodes_.reserve(static_cast<std::size_t>(params.nodes));
  for (int i = 0; i < params.nodes; ++i)
    nodes_.push_back(std::make_unique<Node>(engine, i, params.node));
  network_ = std::make_unique<Network>(*this, params.rpc_latency, params.node.nic_latency);
  bb_ = std::make_unique<BurstBuffer>(engine, params.bb);
  pfs_ = std::make_unique<PfsDevice>(engine, params.pfs);
}

}  // namespace uvs::hw
