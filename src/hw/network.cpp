#include "src/hw/network.hpp"

#include <vector>

#include "src/hw/cluster.hpp"
#include "src/sim/combinators.hpp"

namespace uvs::hw {

namespace {
sim::Task PoolLeg(sim::FairSharePool& pool, Bytes bytes) { co_await pool.Transfer(bytes); }
}  // namespace

Network::Network(Cluster& cluster, Time rpc_latency, Time nic_latency)
    : cluster_(&cluster), rpc_latency_(rpc_latency), nic_latency_(nic_latency) {}

sim::Task Network::Transfer(int src_node, int dst_node, Bytes bytes) {
  sim::Engine& engine = cluster_->engine();
  if (src_node == dst_node || bytes == 0) co_return;
  co_await engine.Delay(nic_latency_);
  std::vector<sim::Task> legs;
  legs.push_back(PoolLeg(cluster_->node(src_node).nic_tx(), bytes));
  legs.push_back(PoolLeg(cluster_->node(dst_node).nic_rx(), bytes));
  co_await sim::WhenAll(engine, std::move(legs));
}

sim::Task Network::SendMessage(int src_node, int dst_node) {
  sim::Engine& engine = cluster_->engine();
  if (src_node != dst_node) co_await engine.Delay(rpc_latency_);
}

sim::Task Network::RoundTrip(int src_node, int dst_node) {
  sim::Engine& engine = cluster_->engine();
  if (src_node != dst_node) co_await engine.Delay(2 * rpc_latency_);
}

}  // namespace uvs::hw
