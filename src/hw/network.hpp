// Inter-node network: hose model. A bulk transfer consumes the sender's NIC
// injection pool and the receiver's ejection pool concurrently and finishes
// when both legs complete; small messages (RPCs) cost latency only.
#pragma once

#include "src/common/units.hpp"
#include "src/hw/params.hpp"
#include "src/sim/task.hpp"

namespace uvs::hw {

class Cluster;

class Network {
 public:
  Network(Cluster& cluster, Time rpc_latency, Time nic_latency);

  /// Bulk data movement between nodes. Intra-node transfers are free at
  /// this level (they are charged to the DRAM pools by the caller).
  sim::Task Transfer(int src_node, int dst_node, Bytes bytes);

  /// One-way small-message latency (requests, acks).
  sim::Task SendMessage(int src_node, int dst_node);

  /// Request/response pair with no payload to speak of.
  sim::Task RoundTrip(int src_node, int dst_node);

 private:
  Cluster* cluster_;
  Time rpc_latency_;
  Time nic_latency_;
};

}  // namespace uvs::hw
