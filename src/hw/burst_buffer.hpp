// Shared SSD-based burst buffer: a pool of DataWarp-like server nodes
// reachable from every compute node, each with its own bandwidth pool.
#pragma once

#include <memory>
#include <vector>

#include "src/hw/params.hpp"
#include "src/obs/recorder.hpp"
#include "src/sim/fair_share.hpp"
#include "src/sim/task.hpp"

namespace uvs::hw {

class BurstBuffer {
 public:
  BurstBuffer(sim::Engine& engine, const BurstBufferParams& params);
  BurstBuffer(const BurstBuffer&) = delete;
  BurstBuffer& operator=(const BurstBuffer&) = delete;

  const BurstBufferParams& params() const { return params_; }
  int node_count() const { return static_cast<int>(pools_.size()); }
  Bytes total_capacity() const;

  sim::FairSharePool& pool(int bb_node) { return *pools_.at(static_cast<std::size_t>(bb_node)); }

  /// Device access on one BB node. `inflation >= 1` models lock/section
  /// overhead (shared-file layouts pay it; log-structured FPP does not).
  /// `parent` links the device span into the causal DAG.
  sim::Task Access(int bb_node, Bytes bytes, double inflation = 1.0, obs::SpanRef parent = {});

  /// Fault window: BB node `i` drains at `factor` (in (0,1]) of nominal
  /// bandwidth until Restore(). A second Degrade overwrites the factor
  /// (windows do not nest).
  void Degrade(int i, double factor);
  void Restore(int i);
  bool degraded(int i) const { return windows_.at(static_cast<std::size_t>(i)).factor < 1.0; }
  /// Total degraded device-seconds so far, open windows included.
  Time degraded_seconds() const;

  /// Emits trace spans for still-open degrade windows and restarts them at
  /// now (pre-export hook; degraded_seconds() totals are unchanged).
  void FlushDegradeSpans();

 private:
  struct DegradedWindow {
    double factor = 1.0;
    Time since = 0.0;
  };

  void EmitDegradeSpan(int i, const DegradedWindow& w);

  BurstBufferParams params_;
  sim::Engine* engine_;
  std::vector<std::unique_ptr<sim::FairSharePool>> pools_;
  std::vector<DegradedWindow> windows_;
  Time degraded_seconds_ = 0.0;  // closed windows only; see degraded_seconds()
};

}  // namespace uvs::hw
