// Bridges hardware-device state into the obs:: sampling layer: a sampler
// source that publishes per-device-class gauges (bytes moved, busy time,
// utilization, queue depths) every sampling interval.
#pragma once

#include "src/hw/cluster.hpp"
#include "src/obs/sampler.hpp"

namespace uvs::hw {

/// Registers a source on `sampler` that snapshots `cluster`'s device
/// counters into gauges named `hw.<class>.{bytes,busy_seconds,utilization}`
/// plus `hw.{ost,bb}.active_flows` / `hw.ost.max_queue_depth`. The cluster
/// must outlive the sampler.
void RegisterClusterGauges(obs::Sampler& sampler, Cluster& cluster);

}  // namespace uvs::hw
