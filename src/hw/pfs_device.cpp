#include "src/hw/pfs_device.hpp"

#include <cassert>
#include <cmath>
#include <string>

#include "src/obs/recorder.hpp"

namespace uvs::hw {

PfsDevice::PfsDevice(sim::Engine& engine, const PfsParams& params)
    : params_(params), engine_(&engine) {
  pools_.reserve(static_cast<std::size_t>(params.osts));
  for (int i = 0; i < params.osts; ++i) {
    pools_.push_back(std::make_unique<sim::FairSharePool>(
        engine, sim::FairSharePool::Options{.name = "ost" + std::to_string(i),
                                            .capacity = params.bw_per_ost}));
  }
}

sim::Task PfsDevice::Access(int ost, Bytes bytes, double inflation) {
  assert(inflation >= 1.0);
  obs::SpanTimer span(*engine_, "hw", "ost.access", obs::Track::Ost(ost), bytes);
  obs::Count("hw.ost.accesses");
  obs::Count("hw.ost.bytes", bytes);
  co_await engine_->Delay(params_.latency);
  const auto effective = static_cast<Bytes>(std::llround(static_cast<double>(bytes) * inflation));
  co_await this->ost(ost).Transfer(effective);
}

}  // namespace uvs::hw
