#include "src/hw/pfs_device.hpp"

#include <cassert>
#include <cmath>
#include <string>

#include "src/obs/recorder.hpp"

namespace uvs::hw {

PfsDevice::PfsDevice(sim::Engine& engine, const PfsParams& params)
    : params_(params), engine_(&engine) {
  pools_.reserve(static_cast<std::size_t>(params.osts));
  for (int i = 0; i < params.osts; ++i) {
    pools_.push_back(std::make_unique<sim::FairSharePool>(
        engine, sim::FairSharePool::Options{.name = "ost" + std::to_string(i),
                                            .capacity = params.bw_per_ost}));
  }
  windows_.resize(pools_.size());
}

sim::Task PfsDevice::Access(int ost, Bytes bytes, double inflation, obs::SpanRef parent) {
  assert(inflation >= 1.0);
  obs::SpanTimer span(*engine_, "hw", "ost.access", obs::Track::Ost(ost), bytes,
                      {.cat = obs::Category::kPfs, .parent = parent});
  obs::Count("hw.ost.accesses");
  obs::Count("hw.ost.bytes", bytes);
  co_await engine_->Delay(params_.latency);
  const auto effective = static_cast<Bytes>(std::llround(static_cast<double>(bytes) * inflation));
  co_await this->ost(ost).Transfer(effective);
}

void PfsDevice::EmitDegradeSpan(int i, const DegradedWindow& w) {
  if (obs::Recorder* r = obs::Recorder::Current(); r && engine_->Now() > w.since) {
    r->AddSpanTagged("hw", "ost.degraded", obs::Track::Ost(i), w.since, engine_->Now(),
                     obs::kNoBytes, {.cat = obs::Category::kDegraded});
  }
}

void PfsDevice::Degrade(int i, double factor) {
  assert(factor > 0.0 && factor <= 1.0);
  DegradedWindow& w = windows_.at(static_cast<std::size_t>(i));
  if (w.factor < 1.0) {  // overwrite closes the old window
    degraded_seconds_ += engine_->Now() - w.since;
    EmitDegradeSpan(i, w);
  }
  if (w.factor >= 1.0) obs::Count("hw.ost.degrade_windows");
  w = {factor, engine_->Now()};
  ost(i).SetCapacity(params_.bw_per_ost * factor);
}

void PfsDevice::Restore(int i) {
  DegradedWindow& w = windows_.at(static_cast<std::size_t>(i));
  if (w.factor >= 1.0) return;
  degraded_seconds_ += engine_->Now() - w.since;
  EmitDegradeSpan(i, w);
  w = {};
  ost(i).SetCapacity(params_.bw_per_ost);
}

void PfsDevice::FlushDegradeSpans() {
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    DegradedWindow& w = windows_[i];
    if (w.factor >= 1.0) continue;
    degraded_seconds_ += engine_->Now() - w.since;
    EmitDegradeSpan(static_cast<int>(i), w);
    w.since = engine_->Now();  // window stays open; accounting restarts here
  }
}

Time PfsDevice::degraded_seconds() const {
  Time total = degraded_seconds_;
  for (const DegradedWindow& w : windows_)
    if (w.factor < 1.0) total += engine_->Now() - w.since;
  return total;
}

}  // namespace uvs::hw
