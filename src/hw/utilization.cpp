#include "src/hw/utilization.hpp"

#include <sstream>

#include "src/common/strings.hpp"

namespace uvs::hw {

namespace {
void Accumulate(DeviceClassUsage& usage, sim::FairSharePool& pool, Time elapsed) {
  usage.total_bytes += pool.total_bytes();
  usage.busy_time += pool.busy_time();
  usage.devices += 1;
  usage.peak_possible_bytes += pool.capacity() * elapsed;
}
}  // namespace

UtilizationReport CollectUtilization(Cluster& cluster) {
  UtilizationReport report;
  report.elapsed = cluster.engine().Now();
  for (int n = 0; n < cluster.node_count(); ++n) {
    Node& node = cluster.node(n);
    Accumulate(report.nic_tx, node.nic_tx(), report.elapsed);
    Accumulate(report.nic_rx, node.nic_rx(), report.elapsed);
    for (int s = 0; s < node.sockets(); ++s)
      Accumulate(report.dram, node.socket(s).dram(), report.elapsed);
  }
  for (int b = 0; b < cluster.burst_buffer().node_count(); ++b)
    Accumulate(report.bb, cluster.burst_buffer().pool(b), report.elapsed);
  for (int o = 0; o < cluster.pfs().ost_count(); ++o)
    Accumulate(report.ost, cluster.pfs().ost(o), report.elapsed);
  return report;
}

std::string UtilizationReport::ToString() const {
  std::ostringstream os;
  auto line = [&](const char* name, const DeviceClassUsage& usage) {
    os << "  " << name << ": " << HumanBytes(usage.total_bytes) << " over " << usage.devices
       << " devices, utilization " << FormatDouble(usage.Utilization() * 100, 1)
       << "%, busy " << HumanTime(usage.busy_time) << "\n";
  };
  os << "device utilization over " << HumanTime(elapsed) << ":\n";
  line("nic_tx", nic_tx);
  line("nic_rx", nic_rx);
  line("dram  ", dram);
  line("bb    ", bb);
  line("ost   ", ost);
  return os.str();
}

}  // namespace uvs::hw
