// Disk-based parallel-file-system hardware: an array of object storage
// targets (OSTs), each an independent bandwidth pool. File-level semantics
// (striping, locking) live in storage::Pfs; this is just the device array.
#pragma once

#include <memory>
#include <vector>

#include "src/hw/params.hpp"
#include "src/obs/recorder.hpp"
#include "src/sim/fair_share.hpp"
#include "src/sim/task.hpp"

namespace uvs::hw {

class PfsDevice {
 public:
  PfsDevice(sim::Engine& engine, const PfsParams& params);
  PfsDevice(const PfsDevice&) = delete;
  PfsDevice& operator=(const PfsDevice&) = delete;

  const PfsParams& params() const { return params_; }
  int ost_count() const { return static_cast<int>(pools_.size()); }
  sim::FairSharePool& ost(int i) { return *pools_.at(static_cast<std::size_t>(i)); }

  /// Device access on one OST; `inflation >= 1` models extent-lock
  /// overhead for contended shared-file writes. `parent` links the device
  /// span into the causal DAG (obs::attribution).
  sim::Task Access(int ost, Bytes bytes, double inflation = 1.0, obs::SpanRef parent = {});

  /// Fault window: OST `i` serves at `factor` (in (0,1]) of its nominal
  /// bandwidth until Restore(). A second Degrade overwrites the factor
  /// (windows do not nest).
  void Degrade(int i, double factor);
  void Restore(int i);
  bool degraded(int i) const { return windows_.at(static_cast<std::size_t>(i)).factor < 1.0; }
  /// Total degraded device-seconds so far, open windows included.
  Time degraded_seconds() const;

  /// Emits trace spans for still-open degrade windows (covering [since,
  /// now]) and restarts them at now, so pre-export traces show every fault
  /// window. degraded_seconds() totals are unchanged.
  void FlushDegradeSpans();

 private:
  struct DegradedWindow {
    double factor = 1.0;
    Time since = 0.0;
  };

  void EmitDegradeSpan(int i, const DegradedWindow& w);

  PfsParams params_;
  sim::Engine* engine_;
  std::vector<std::unique_ptr<sim::FairSharePool>> pools_;
  std::vector<DegradedWindow> windows_;
  Time degraded_seconds_ = 0.0;  // closed windows only; see degraded_seconds()
};

}  // namespace uvs::hw
