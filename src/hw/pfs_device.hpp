// Disk-based parallel-file-system hardware: an array of object storage
// targets (OSTs), each an independent bandwidth pool. File-level semantics
// (striping, locking) live in storage::Pfs; this is just the device array.
#pragma once

#include <memory>
#include <vector>

#include "src/hw/params.hpp"
#include "src/sim/fair_share.hpp"
#include "src/sim/task.hpp"

namespace uvs::hw {

class PfsDevice {
 public:
  PfsDevice(sim::Engine& engine, const PfsParams& params);
  PfsDevice(const PfsDevice&) = delete;
  PfsDevice& operator=(const PfsDevice&) = delete;

  const PfsParams& params() const { return params_; }
  int ost_count() const { return static_cast<int>(pools_.size()); }
  sim::FairSharePool& ost(int i) { return *pools_.at(static_cast<std::size_t>(i)); }

  /// Device access on one OST; `inflation >= 1` models extent-lock
  /// overhead for contended shared-file writes.
  sim::Task Access(int ost, Bytes bytes, double inflation = 1.0);

 private:
  PfsParams params_;
  sim::Engine* engine_;
  std::vector<std::unique_ptr<sim::FairSharePool>> pools_;
};

}  // namespace uvs::hw
