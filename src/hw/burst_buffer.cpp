#include "src/hw/burst_buffer.hpp"

#include <cassert>
#include <cmath>
#include <string>

#include "src/obs/recorder.hpp"

namespace uvs::hw {

BurstBuffer::BurstBuffer(sim::Engine& engine, const BurstBufferParams& params)
    : params_(params), engine_(&engine) {
  pools_.reserve(static_cast<std::size_t>(params.bb_nodes));
  for (int i = 0; i < params.bb_nodes; ++i) {
    pools_.push_back(std::make_unique<sim::FairSharePool>(
        engine, sim::FairSharePool::Options{.name = "bb" + std::to_string(i),
                                            .capacity = params.bw_per_bb_node}));
  }
  windows_.resize(pools_.size());
}

Bytes BurstBuffer::total_capacity() const {
  return params_.capacity_per_bb_node * static_cast<Bytes>(params_.bb_nodes);
}

sim::Task BurstBuffer::Access(int bb_node, Bytes bytes, double inflation, obs::SpanRef parent) {
  assert(inflation >= 1.0);
  obs::SpanTimer span(*engine_, "hw", "bb.access", obs::Track::BbNode(bb_node), bytes,
                      {.cat = obs::Category::kBb, .parent = parent});
  obs::Count("hw.bb.accesses");
  obs::Count("hw.bb.bytes", bytes);
  co_await engine_->Delay(params_.latency);
  const auto effective = static_cast<Bytes>(std::llround(static_cast<double>(bytes) * inflation));
  co_await pool(bb_node).Transfer(effective);
}

void BurstBuffer::EmitDegradeSpan(int i, const DegradedWindow& w) {
  if (obs::Recorder* r = obs::Recorder::Current(); r && engine_->Now() > w.since) {
    r->AddSpanTagged("hw", "bb.degraded", obs::Track::BbNode(i), w.since, engine_->Now(),
                     obs::kNoBytes, {.cat = obs::Category::kDegraded});
  }
}

void BurstBuffer::Degrade(int i, double factor) {
  assert(factor > 0.0 && factor <= 1.0);
  DegradedWindow& w = windows_.at(static_cast<std::size_t>(i));
  if (w.factor < 1.0) {  // overwrite closes the old window
    degraded_seconds_ += engine_->Now() - w.since;
    EmitDegradeSpan(i, w);
  }
  if (w.factor >= 1.0) obs::Count("hw.bb.degrade_windows");
  w = {factor, engine_->Now()};
  pool(i).SetCapacity(params_.bw_per_bb_node * factor);
}

void BurstBuffer::Restore(int i) {
  DegradedWindow& w = windows_.at(static_cast<std::size_t>(i));
  if (w.factor >= 1.0) return;
  degraded_seconds_ += engine_->Now() - w.since;
  EmitDegradeSpan(i, w);
  w = {};
  pool(i).SetCapacity(params_.bw_per_bb_node);
}

void BurstBuffer::FlushDegradeSpans() {
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    DegradedWindow& w = windows_[i];
    if (w.factor >= 1.0) continue;
    degraded_seconds_ += engine_->Now() - w.since;
    EmitDegradeSpan(static_cast<int>(i), w);
    w.since = engine_->Now();  // window stays open; accounting restarts here
  }
}

Time BurstBuffer::degraded_seconds() const {
  Time total = degraded_seconds_;
  for (const DegradedWindow& w : windows_)
    if (w.factor < 1.0) total += engine_->Now() - w.since;
  return total;
}

}  // namespace uvs::hw
