// The simulated machine: compute nodes, network, shared burst buffer, and
// PFS devices, built from a ClusterParams description.
#pragma once

#include <memory>
#include <vector>

#include "src/common/rng.hpp"
#include "src/hw/burst_buffer.hpp"
#include "src/hw/network.hpp"
#include "src/hw/node.hpp"
#include "src/hw/params.hpp"
#include "src/hw/pfs_device.hpp"
#include "src/sim/engine.hpp"

namespace uvs::hw {

class Cluster {
 public:
  Cluster(sim::Engine& engine, ClusterParams params);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Engine& engine() { return *engine_; }
  const ClusterParams& params() const { return params_; }

  int node_count() const { return static_cast<int>(nodes_.size()); }
  Node& node(int i) { return *nodes_.at(static_cast<std::size_t>(i)); }

  Network& network() { return *network_; }
  BurstBuffer& burst_buffer() { return *bb_; }
  PfsDevice& pfs() { return *pfs_; }

  /// Deterministic per-cluster RNG (seeded from params.seed).
  Rng& rng() { return rng_; }

 private:
  sim::Engine* engine_;
  ClusterParams params_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<BurstBuffer> bb_;
  std::unique_ptr<PfsDevice> pfs_;
  Rng rng_;
};

}  // namespace uvs::hw
