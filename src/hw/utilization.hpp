// Post-run utilization reporting: summarizes how many bytes moved through
// and how busy each device class was (NICs, DRAM sockets, BB nodes, OSTs).
// Useful for identifying the binding resource of an experiment.
#pragma once

#include <string>

#include "src/hw/cluster.hpp"

namespace uvs::hw {

struct DeviceClassUsage {
  Bytes total_bytes = 0;
  Time busy_time = 0;   // summed across devices in the class
  int devices = 0;
  double peak_possible_bytes = 0;  // capacity * elapsed * devices

  /// Fraction of the class's aggregate capacity actually used over
  /// `elapsed` seconds (0 when elapsed is 0).
  double Utilization() const {
    return peak_possible_bytes > 0 ? static_cast<double>(total_bytes) / peak_possible_bytes
                                   : 0.0;
  }
};

struct UtilizationReport {
  DeviceClassUsage nic_tx;
  DeviceClassUsage nic_rx;
  DeviceClassUsage dram;
  DeviceClassUsage bb;
  DeviceClassUsage ost;
  Time elapsed = 0;

  std::string ToString() const;
};

/// Snapshot of the cluster's device counters at the current simulated time.
UtilizationReport CollectUtilization(Cluster& cluster);

}  // namespace uvs::hw
