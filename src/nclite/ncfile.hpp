// Minimal netCDF-like (classic CDF format) container over MPI-IO — the
// third I/O API the paper names alongside MPI-IO and HDF5 (§I, §II-F).
//
// Layout follows the classic netCDF file format:
//   [header][fixed-size variables, one contiguous block each]
//   [record section: for each record r, every record variable's slab]
// Record variables are *interleaved by record*, so a rank writing "its"
// part of every record issues strided accesses — a genuinely different
// access pattern from h5lite's contiguous datasets, and the reason
// PnetCDF-style workloads stress a storage system differently.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "src/common/units.hpp"
#include "src/vmpi/file.hpp"

namespace uvs::nclite {

struct VarSpec {
  std::string name;
  Bytes elem_size = 8;
  /// Elements each rank owns per (record, variable) slab — or in total for
  /// fixed variables.
  std::uint64_t elems_per_rank = 0;
  /// Record variables repeat once per record along the unlimited dimension.
  bool record = false;

  Bytes bytes_per_rank() const { return elem_size * elems_per_rank; }
};

class NcFile {
 public:
  static constexpr Bytes kHeaderBytes = 8_KiB;

  NcFile(vmpi::Runtime& runtime, vmpi::ProgramId program, std::string name,
         vmpi::FileMode mode, vmpi::AdioDriver& driver, std::vector<VarSpec> vars);

  vmpi::File& file() { return *file_; }
  int ranks() const { return ranks_; }
  int var_count() const { return static_cast<int>(vars_.size()); }
  const VarSpec& var(int v) const { return vars_.at(static_cast<std::size_t>(v)); }

  /// Size of one full record (all record variables, all ranks).
  Bytes RecordBytes() const;
  /// Start of the fixed section's variable `v` (must be fixed).
  Bytes FixedVarOffset(int v) const;
  /// Start of the record section.
  Bytes RecordSectionOffset() const;
  /// Offset of rank `rank`'s slab of record variable `v` in record `rec`.
  Bytes RecordSlabOffset(int v, int rank, std::uint64_t rec) const;
  /// Header + fixed section + `records` full records.
  Bytes TotalBytes(std::uint64_t records) const;

  // Collective per-rank operations.
  sim::Task Open(int rank) { return file_->Open(rank); }
  sim::Task Close(int rank) { return file_->Close(rank); }
  /// Writes rank's block of a fixed variable.
  sim::Task WriteFixed(int rank, int v);
  /// Writes rank's slab of record variable `v` in record `rec`.
  sim::Task WriteRecord(int rank, int v, std::uint64_t rec);
  /// Writes every record variable's slab for record `rec` (one time step).
  sim::Task WriteWholeRecord(int rank, std::uint64_t rec);
  sim::Task ReadRecord(int rank, int v, std::uint64_t rec);

 private:
  std::unique_ptr<vmpi::File> file_;
  int ranks_;
  std::vector<VarSpec> vars_;
};

}  // namespace uvs::nclite
