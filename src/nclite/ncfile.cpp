#include "src/nclite/ncfile.hpp"

namespace uvs::nclite {

NcFile::NcFile(vmpi::Runtime& runtime, vmpi::ProgramId program, std::string name,
               vmpi::FileMode mode, vmpi::AdioDriver& driver, std::vector<VarSpec> vars)
    : file_(std::make_unique<vmpi::File>(
          runtime, program, vmpi::FileOptions{std::move(name), mode, /*hdf5=*/false},
          driver)),
      ranks_(runtime.ProgramSize(program)),
      vars_(std::move(vars)) {}

Bytes NcFile::RecordBytes() const {
  Bytes total = 0;
  for (const auto& var : vars_)
    if (var.record) total += var.bytes_per_rank() * static_cast<Bytes>(ranks_);
  return total;
}

Bytes NcFile::FixedVarOffset(int v) const {
  assert(!var(v).record);
  Bytes offset = kHeaderBytes;
  for (int i = 0; i < v; ++i)
    if (!vars_[static_cast<std::size_t>(i)].record)
      offset += vars_[static_cast<std::size_t>(i)].bytes_per_rank() *
                static_cast<Bytes>(ranks_);
  return offset;
}

Bytes NcFile::RecordSectionOffset() const {
  Bytes offset = kHeaderBytes;
  for (const auto& var : vars_)
    if (!var.record) offset += var.bytes_per_rank() * static_cast<Bytes>(ranks_);
  return offset;
}

Bytes NcFile::RecordSlabOffset(int v, int rank, std::uint64_t rec) const {
  assert(var(v).record);
  Bytes within_record = 0;
  for (int i = 0; i < v; ++i)
    if (vars_[static_cast<std::size_t>(i)].record)
      within_record += vars_[static_cast<std::size_t>(i)].bytes_per_rank() *
                       static_cast<Bytes>(ranks_);
  return RecordSectionOffset() + rec * RecordBytes() + within_record +
         static_cast<Bytes>(rank) * var(v).bytes_per_rank();
}

Bytes NcFile::TotalBytes(std::uint64_t records) const {
  return RecordSectionOffset() + records * RecordBytes();
}

sim::Task NcFile::WriteFixed(int rank, int v) {
  const Bytes offset =
      FixedVarOffset(v) + static_cast<Bytes>(rank) * var(v).bytes_per_rank();
  return file_->WriteAt(rank, offset, var(v).bytes_per_rank());
}

sim::Task NcFile::WriteRecord(int rank, int v, std::uint64_t rec) {
  return file_->WriteAt(rank, RecordSlabOffset(v, rank, rec), var(v).bytes_per_rank());
}

sim::Task NcFile::WriteWholeRecord(int rank, std::uint64_t rec) {
  for (int v = 0; v < var_count(); ++v) {
    if (!var(v).record) continue;
    co_await WriteRecord(rank, v, rec);
  }
}

sim::Task NcFile::ReadRecord(int rank, int v, std::uint64_t rec) {
  return file_->ReadAt(rank, RecordSlabOffset(v, rank, rec), var(v).bytes_per_rank());
}

}  // namespace uvs::nclite
