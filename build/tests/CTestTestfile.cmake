# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_sync_test[1]_include.cmake")
include("/root/repo/build/tests/sim_fair_share_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/storage_log_test[1]_include.cmake")
include("/root/repo/build/tests/storage_pfs_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/meta_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
include("/root/repo/build/tests/workflow_test[1]_include.cmake")
include("/root/repo/build/tests/univistor_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/vmpi_test[1]_include.cmake")
include("/root/repo/build/tests/h5lite_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/ssd_tier_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/sim_property_test[1]_include.cmake")
include("/root/repo/build/tests/collective_test[1]_include.cmake")
include("/root/repo/build/tests/nclite_test[1]_include.cmake")
