# Empty compiler generated dependencies file for storage_pfs_test.
# This may be replaced when dependencies are built.
