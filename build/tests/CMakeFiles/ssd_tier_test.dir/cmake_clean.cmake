file(REMOVE_RECURSE
  "CMakeFiles/ssd_tier_test.dir/ssd_tier_test.cpp.o"
  "CMakeFiles/ssd_tier_test.dir/ssd_tier_test.cpp.o.d"
  "ssd_tier_test"
  "ssd_tier_test.pdb"
  "ssd_tier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_tier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
