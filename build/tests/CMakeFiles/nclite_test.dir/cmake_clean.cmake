file(REMOVE_RECURSE
  "CMakeFiles/nclite_test.dir/nclite_test.cpp.o"
  "CMakeFiles/nclite_test.dir/nclite_test.cpp.o.d"
  "nclite_test"
  "nclite_test.pdb"
  "nclite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nclite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
