# Empty compiler generated dependencies file for nclite_test.
# This may be replaced when dependencies are built.
