file(REMOVE_RECURSE
  "CMakeFiles/vmpi_test.dir/vmpi_test.cpp.o"
  "CMakeFiles/vmpi_test.dir/vmpi_test.cpp.o.d"
  "vmpi_test"
  "vmpi_test.pdb"
  "vmpi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
