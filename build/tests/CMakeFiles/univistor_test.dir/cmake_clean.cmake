file(REMOVE_RECURSE
  "CMakeFiles/univistor_test.dir/univistor_test.cpp.o"
  "CMakeFiles/univistor_test.dir/univistor_test.cpp.o.d"
  "univistor_test"
  "univistor_test.pdb"
  "univistor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/univistor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
