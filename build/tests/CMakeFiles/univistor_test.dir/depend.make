# Empty dependencies file for univistor_test.
# This may be replaced when dependencies are built.
