file(REMOVE_RECURSE
  "CMakeFiles/storage_log_test.dir/storage_log_test.cpp.o"
  "CMakeFiles/storage_log_test.dir/storage_log_test.cpp.o.d"
  "storage_log_test"
  "storage_log_test.pdb"
  "storage_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
