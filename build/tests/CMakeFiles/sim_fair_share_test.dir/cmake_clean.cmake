file(REMOVE_RECURSE
  "CMakeFiles/sim_fair_share_test.dir/sim_fair_share_test.cpp.o"
  "CMakeFiles/sim_fair_share_test.dir/sim_fair_share_test.cpp.o.d"
  "sim_fair_share_test"
  "sim_fair_share_test.pdb"
  "sim_fair_share_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_fair_share_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
