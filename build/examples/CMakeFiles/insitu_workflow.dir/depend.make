# Empty dependencies file for insitu_workflow.
# This may be replaced when dependencies are built.
