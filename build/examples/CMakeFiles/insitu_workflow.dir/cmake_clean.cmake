file(REMOVE_RECURSE
  "CMakeFiles/insitu_workflow.dir/insitu_workflow.cpp.o"
  "CMakeFiles/insitu_workflow.dir/insitu_workflow.cpp.o.d"
  "insitu_workflow"
  "insitu_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
