file(REMOVE_RECURSE
  "CMakeFiles/vpic_checkpoint.dir/vpic_checkpoint.cpp.o"
  "CMakeFiles/vpic_checkpoint.dir/vpic_checkpoint.cpp.o.d"
  "vpic_checkpoint"
  "vpic_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpic_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
