# Empty dependencies file for vpic_checkpoint.
# This may be replaced when dependencies are built.
