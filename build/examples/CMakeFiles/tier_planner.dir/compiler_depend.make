# Empty compiler generated dependencies file for tier_planner.
# This may be replaced when dependencies are built.
