file(REMOVE_RECURSE
  "CMakeFiles/tier_planner.dir/tier_planner.cpp.o"
  "CMakeFiles/tier_planner.dir/tier_planner.cpp.o.d"
  "tier_planner"
  "tier_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tier_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
