file(REMOVE_RECURSE
  "CMakeFiles/uvsim.dir/uvsim.cpp.o"
  "CMakeFiles/uvsim.dir/uvsim.cpp.o.d"
  "uvsim"
  "uvsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
