# Empty dependencies file for uvsim.
# This may be replaced when dependencies are built.
