file(REMOVE_RECURSE
  "CMakeFiles/fig5c_flush_adpt_ia.dir/fig5c_flush_adpt_ia.cpp.o"
  "CMakeFiles/fig5c_flush_adpt_ia.dir/fig5c_flush_adpt_ia.cpp.o.d"
  "fig5c_flush_adpt_ia"
  "fig5c_flush_adpt_ia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_flush_adpt_ia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
