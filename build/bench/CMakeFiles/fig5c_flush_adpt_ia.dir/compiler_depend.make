# Empty compiler generated dependencies file for fig5c_flush_adpt_ia.
# This may be replaced when dependencies are built.
