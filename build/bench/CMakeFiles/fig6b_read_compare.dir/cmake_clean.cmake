file(REMOVE_RECURSE
  "CMakeFiles/fig6b_read_compare.dir/fig6b_read_compare.cpp.o"
  "CMakeFiles/fig6b_read_compare.dir/fig6b_read_compare.cpp.o.d"
  "fig6b_read_compare"
  "fig6b_read_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_read_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
