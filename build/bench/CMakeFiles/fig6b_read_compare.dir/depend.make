# Empty dependencies file for fig6b_read_compare.
# This may be replaced when dependencies are built.
