file(REMOVE_RECURSE
  "CMakeFiles/fig7_vpic_5step.dir/fig7_vpic_5step.cpp.o"
  "CMakeFiles/fig7_vpic_5step.dir/fig7_vpic_5step.cpp.o.d"
  "fig7_vpic_5step"
  "fig7_vpic_5step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_vpic_5step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
