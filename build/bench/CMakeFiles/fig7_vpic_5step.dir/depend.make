# Empty dependencies file for fig7_vpic_5step.
# This may be replaced when dependencies are built.
