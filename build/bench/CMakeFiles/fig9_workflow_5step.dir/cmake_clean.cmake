file(REMOVE_RECURSE
  "CMakeFiles/fig9_workflow_5step.dir/fig9_workflow_5step.cpp.o"
  "CMakeFiles/fig9_workflow_5step.dir/fig9_workflow_5step.cpp.o.d"
  "fig9_workflow_5step"
  "fig9_workflow_5step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_workflow_5step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
