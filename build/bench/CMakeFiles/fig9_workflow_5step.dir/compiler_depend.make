# Empty compiler generated dependencies file for fig9_workflow_5step.
# This may be replaced when dependencies are built.
