file(REMOVE_RECURSE
  "CMakeFiles/fig5a_write_ia_coc.dir/fig5a_write_ia_coc.cpp.o"
  "CMakeFiles/fig5a_write_ia_coc.dir/fig5a_write_ia_coc.cpp.o.d"
  "fig5a_write_ia_coc"
  "fig5a_write_ia_coc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_write_ia_coc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
