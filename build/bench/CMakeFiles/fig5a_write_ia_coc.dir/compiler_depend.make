# Empty compiler generated dependencies file for fig5a_write_ia_coc.
# This may be replaced when dependencies are built.
