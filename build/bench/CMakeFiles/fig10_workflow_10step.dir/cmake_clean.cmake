file(REMOVE_RECURSE
  "CMakeFiles/fig10_workflow_10step.dir/fig10_workflow_10step.cpp.o"
  "CMakeFiles/fig10_workflow_10step.dir/fig10_workflow_10step.cpp.o.d"
  "fig10_workflow_10step"
  "fig10_workflow_10step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_workflow_10step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
