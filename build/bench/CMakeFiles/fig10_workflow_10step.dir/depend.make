# Empty dependencies file for fig10_workflow_10step.
# This may be replaced when dependencies are built.
