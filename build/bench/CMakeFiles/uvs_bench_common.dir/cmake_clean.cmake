file(REMOVE_RECURSE
  "CMakeFiles/uvs_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/uvs_bench_common.dir/bench_common.cpp.o.d"
  "libuvs_bench_common.a"
  "libuvs_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvs_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
