# Empty compiler generated dependencies file for uvs_bench_common.
# This may be replaced when dependencies are built.
