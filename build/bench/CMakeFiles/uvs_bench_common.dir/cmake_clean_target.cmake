file(REMOVE_RECURSE
  "libuvs_bench_common.a"
)
