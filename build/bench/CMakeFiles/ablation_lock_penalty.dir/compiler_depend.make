# Empty compiler generated dependencies file for ablation_lock_penalty.
# This may be replaced when dependencies are built.
