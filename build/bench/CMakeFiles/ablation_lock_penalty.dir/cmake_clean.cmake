file(REMOVE_RECURSE
  "CMakeFiles/ablation_lock_penalty.dir/ablation_lock_penalty.cpp.o"
  "CMakeFiles/ablation_lock_penalty.dir/ablation_lock_penalty.cpp.o.d"
  "ablation_lock_penalty"
  "ablation_lock_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lock_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
