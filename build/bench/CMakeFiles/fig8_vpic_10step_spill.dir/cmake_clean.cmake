file(REMOVE_RECURSE
  "CMakeFiles/fig8_vpic_10step_spill.dir/fig8_vpic_10step_spill.cpp.o"
  "CMakeFiles/fig8_vpic_10step_spill.dir/fig8_vpic_10step_spill.cpp.o.d"
  "fig8_vpic_10step_spill"
  "fig8_vpic_10step_spill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_vpic_10step_spill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
