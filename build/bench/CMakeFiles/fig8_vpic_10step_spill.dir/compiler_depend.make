# Empty compiler generated dependencies file for fig8_vpic_10step_spill.
# This may be replaced when dependencies are built.
