# Empty dependencies file for fig5b_read_ia_coc.
# This may be replaced when dependencies are built.
