file(REMOVE_RECURSE
  "CMakeFiles/fig6c_flush_compare.dir/fig6c_flush_compare.cpp.o"
  "CMakeFiles/fig6c_flush_compare.dir/fig6c_flush_compare.cpp.o.d"
  "fig6c_flush_compare"
  "fig6c_flush_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_flush_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
