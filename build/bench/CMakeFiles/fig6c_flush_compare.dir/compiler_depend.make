# Empty compiler generated dependencies file for fig6c_flush_compare.
# This may be replaced when dependencies are built.
