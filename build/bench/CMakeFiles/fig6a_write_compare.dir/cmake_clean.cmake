file(REMOVE_RECURSE
  "CMakeFiles/fig6a_write_compare.dir/fig6a_write_compare.cpp.o"
  "CMakeFiles/fig6a_write_compare.dir/fig6a_write_compare.cpp.o.d"
  "fig6a_write_compare"
  "fig6a_write_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_write_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
