# Empty dependencies file for fig6a_write_compare.
# This may be replaced when dependencies are built.
