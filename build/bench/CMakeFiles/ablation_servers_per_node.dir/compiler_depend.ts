# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ablation_servers_per_node.
