file(REMOVE_RECURSE
  "CMakeFiles/ablation_servers_per_node.dir/ablation_servers_per_node.cpp.o"
  "CMakeFiles/ablation_servers_per_node.dir/ablation_servers_per_node.cpp.o.d"
  "ablation_servers_per_node"
  "ablation_servers_per_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_servers_per_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
