# Empty dependencies file for ablation_servers_per_node.
# This may be replaced when dependencies are built.
