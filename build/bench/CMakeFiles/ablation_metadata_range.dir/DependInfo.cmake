
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_metadata_range.cpp" "bench/CMakeFiles/ablation_metadata_range.dir/ablation_metadata_range.cpp.o" "gcc" "bench/CMakeFiles/ablation_metadata_range.dir/ablation_metadata_range.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/uvs_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/uvs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/h5lite/CMakeFiles/uvs_h5lite.dir/DependInfo.cmake"
  "/root/repo/build/src/univistor/CMakeFiles/uvs_univistor.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/uvs_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/uvs_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/uvs_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/uvs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/uvs_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/uvs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/uvs_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/uvs_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/uvs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uvs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
