# Empty compiler generated dependencies file for ablation_metadata_range.
# This may be replaced when dependencies are built.
