file(REMOVE_RECURSE
  "CMakeFiles/ablation_metadata_range.dir/ablation_metadata_range.cpp.o"
  "CMakeFiles/ablation_metadata_range.dir/ablation_metadata_range.cpp.o.d"
  "ablation_metadata_range"
  "ablation_metadata_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_metadata_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
