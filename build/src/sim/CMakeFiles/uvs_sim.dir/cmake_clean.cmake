file(REMOVE_RECURSE
  "CMakeFiles/uvs_sim.dir/engine.cpp.o"
  "CMakeFiles/uvs_sim.dir/engine.cpp.o.d"
  "CMakeFiles/uvs_sim.dir/event.cpp.o"
  "CMakeFiles/uvs_sim.dir/event.cpp.o.d"
  "CMakeFiles/uvs_sim.dir/fair_share.cpp.o"
  "CMakeFiles/uvs_sim.dir/fair_share.cpp.o.d"
  "CMakeFiles/uvs_sim.dir/sync.cpp.o"
  "CMakeFiles/uvs_sim.dir/sync.cpp.o.d"
  "CMakeFiles/uvs_sim.dir/task.cpp.o"
  "CMakeFiles/uvs_sim.dir/task.cpp.o.d"
  "libuvs_sim.a"
  "libuvs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
