file(REMOVE_RECURSE
  "libuvs_sim.a"
)
