
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/uvs_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/uvs_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/event.cpp" "src/sim/CMakeFiles/uvs_sim.dir/event.cpp.o" "gcc" "src/sim/CMakeFiles/uvs_sim.dir/event.cpp.o.d"
  "/root/repo/src/sim/fair_share.cpp" "src/sim/CMakeFiles/uvs_sim.dir/fair_share.cpp.o" "gcc" "src/sim/CMakeFiles/uvs_sim.dir/fair_share.cpp.o.d"
  "/root/repo/src/sim/sync.cpp" "src/sim/CMakeFiles/uvs_sim.dir/sync.cpp.o" "gcc" "src/sim/CMakeFiles/uvs_sim.dir/sync.cpp.o.d"
  "/root/repo/src/sim/task.cpp" "src/sim/CMakeFiles/uvs_sim.dir/task.cpp.o" "gcc" "src/sim/CMakeFiles/uvs_sim.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uvs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
