# Empty compiler generated dependencies file for uvs_sim.
# This may be replaced when dependencies are built.
