file(REMOVE_RECURSE
  "libuvs_nclite.a"
)
