
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nclite/ncfile.cpp" "src/nclite/CMakeFiles/uvs_nclite.dir/ncfile.cpp.o" "gcc" "src/nclite/CMakeFiles/uvs_nclite.dir/ncfile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vmpi/CMakeFiles/uvs_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uvs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/uvs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/uvs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uvs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
