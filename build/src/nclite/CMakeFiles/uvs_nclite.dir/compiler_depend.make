# Empty compiler generated dependencies file for uvs_nclite.
# This may be replaced when dependencies are built.
