file(REMOVE_RECURSE
  "CMakeFiles/uvs_nclite.dir/ncfile.cpp.o"
  "CMakeFiles/uvs_nclite.dir/ncfile.cpp.o.d"
  "libuvs_nclite.a"
  "libuvs_nclite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvs_nclite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
