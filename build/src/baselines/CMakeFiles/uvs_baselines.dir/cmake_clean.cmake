file(REMOVE_RECURSE
  "CMakeFiles/uvs_baselines.dir/data_elevator.cpp.o"
  "CMakeFiles/uvs_baselines.dir/data_elevator.cpp.o.d"
  "CMakeFiles/uvs_baselines.dir/lustre_driver.cpp.o"
  "CMakeFiles/uvs_baselines.dir/lustre_driver.cpp.o.d"
  "libuvs_baselines.a"
  "libuvs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
