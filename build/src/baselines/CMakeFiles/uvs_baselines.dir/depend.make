# Empty dependencies file for uvs_baselines.
# This may be replaced when dependencies are built.
