
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/data_elevator.cpp" "src/baselines/CMakeFiles/uvs_baselines.dir/data_elevator.cpp.o" "gcc" "src/baselines/CMakeFiles/uvs_baselines.dir/data_elevator.cpp.o.d"
  "/root/repo/src/baselines/lustre_driver.cpp" "src/baselines/CMakeFiles/uvs_baselines.dir/lustre_driver.cpp.o" "gcc" "src/baselines/CMakeFiles/uvs_baselines.dir/lustre_driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vmpi/CMakeFiles/uvs_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/uvs_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/uvs_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/uvs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uvs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/uvs_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
