# Empty compiler generated dependencies file for uvs_baselines.
# This may be replaced when dependencies are built.
