file(REMOVE_RECURSE
  "libuvs_baselines.a"
)
