file(REMOVE_RECURSE
  "CMakeFiles/uvs_sched.dir/node_scheduler.cpp.o"
  "CMakeFiles/uvs_sched.dir/node_scheduler.cpp.o.d"
  "libuvs_sched.a"
  "libuvs_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvs_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
