# Empty compiler generated dependencies file for uvs_sched.
# This may be replaced when dependencies are built.
