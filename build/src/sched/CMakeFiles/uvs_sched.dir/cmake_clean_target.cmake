file(REMOVE_RECURSE
  "libuvs_sched.a"
)
