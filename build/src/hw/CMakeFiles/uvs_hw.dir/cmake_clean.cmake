file(REMOVE_RECURSE
  "CMakeFiles/uvs_hw.dir/burst_buffer.cpp.o"
  "CMakeFiles/uvs_hw.dir/burst_buffer.cpp.o.d"
  "CMakeFiles/uvs_hw.dir/cluster.cpp.o"
  "CMakeFiles/uvs_hw.dir/cluster.cpp.o.d"
  "CMakeFiles/uvs_hw.dir/network.cpp.o"
  "CMakeFiles/uvs_hw.dir/network.cpp.o.d"
  "CMakeFiles/uvs_hw.dir/node.cpp.o"
  "CMakeFiles/uvs_hw.dir/node.cpp.o.d"
  "CMakeFiles/uvs_hw.dir/pfs_device.cpp.o"
  "CMakeFiles/uvs_hw.dir/pfs_device.cpp.o.d"
  "CMakeFiles/uvs_hw.dir/utilization.cpp.o"
  "CMakeFiles/uvs_hw.dir/utilization.cpp.o.d"
  "libuvs_hw.a"
  "libuvs_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvs_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
