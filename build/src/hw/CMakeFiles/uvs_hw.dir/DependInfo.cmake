
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/burst_buffer.cpp" "src/hw/CMakeFiles/uvs_hw.dir/burst_buffer.cpp.o" "gcc" "src/hw/CMakeFiles/uvs_hw.dir/burst_buffer.cpp.o.d"
  "/root/repo/src/hw/cluster.cpp" "src/hw/CMakeFiles/uvs_hw.dir/cluster.cpp.o" "gcc" "src/hw/CMakeFiles/uvs_hw.dir/cluster.cpp.o.d"
  "/root/repo/src/hw/network.cpp" "src/hw/CMakeFiles/uvs_hw.dir/network.cpp.o" "gcc" "src/hw/CMakeFiles/uvs_hw.dir/network.cpp.o.d"
  "/root/repo/src/hw/node.cpp" "src/hw/CMakeFiles/uvs_hw.dir/node.cpp.o" "gcc" "src/hw/CMakeFiles/uvs_hw.dir/node.cpp.o.d"
  "/root/repo/src/hw/pfs_device.cpp" "src/hw/CMakeFiles/uvs_hw.dir/pfs_device.cpp.o" "gcc" "src/hw/CMakeFiles/uvs_hw.dir/pfs_device.cpp.o.d"
  "/root/repo/src/hw/utilization.cpp" "src/hw/CMakeFiles/uvs_hw.dir/utilization.cpp.o" "gcc" "src/hw/CMakeFiles/uvs_hw.dir/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/uvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uvs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
