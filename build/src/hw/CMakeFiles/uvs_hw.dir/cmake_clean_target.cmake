file(REMOVE_RECURSE
  "libuvs_hw.a"
)
