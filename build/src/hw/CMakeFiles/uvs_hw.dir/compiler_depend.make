# Empty compiler generated dependencies file for uvs_hw.
# This may be replaced when dependencies are built.
