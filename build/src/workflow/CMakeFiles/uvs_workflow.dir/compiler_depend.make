# Empty compiler generated dependencies file for uvs_workflow.
# This may be replaced when dependencies are built.
