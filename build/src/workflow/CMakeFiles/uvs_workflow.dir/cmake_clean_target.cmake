file(REMOVE_RECURSE
  "libuvs_workflow.a"
)
