file(REMOVE_RECURSE
  "CMakeFiles/uvs_workflow.dir/manager.cpp.o"
  "CMakeFiles/uvs_workflow.dir/manager.cpp.o.d"
  "libuvs_workflow.a"
  "libuvs_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvs_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
