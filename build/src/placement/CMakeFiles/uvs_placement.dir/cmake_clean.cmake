file(REMOVE_RECURSE
  "CMakeFiles/uvs_placement.dir/dhp.cpp.o"
  "CMakeFiles/uvs_placement.dir/dhp.cpp.o.d"
  "CMakeFiles/uvs_placement.dir/striping.cpp.o"
  "CMakeFiles/uvs_placement.dir/striping.cpp.o.d"
  "CMakeFiles/uvs_placement.dir/virtual_address.cpp.o"
  "CMakeFiles/uvs_placement.dir/virtual_address.cpp.o.d"
  "libuvs_placement.a"
  "libuvs_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvs_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
