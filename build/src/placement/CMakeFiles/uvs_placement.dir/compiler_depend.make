# Empty compiler generated dependencies file for uvs_placement.
# This may be replaced when dependencies are built.
