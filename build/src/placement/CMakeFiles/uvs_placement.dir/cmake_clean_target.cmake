file(REMOVE_RECURSE
  "libuvs_placement.a"
)
