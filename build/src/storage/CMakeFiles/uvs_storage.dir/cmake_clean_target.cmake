file(REMOVE_RECURSE
  "libuvs_storage.a"
)
