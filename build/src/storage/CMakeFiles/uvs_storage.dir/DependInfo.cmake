
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/layer_store.cpp" "src/storage/CMakeFiles/uvs_storage.dir/layer_store.cpp.o" "gcc" "src/storage/CMakeFiles/uvs_storage.dir/layer_store.cpp.o.d"
  "/root/repo/src/storage/log_file.cpp" "src/storage/CMakeFiles/uvs_storage.dir/log_file.cpp.o" "gcc" "src/storage/CMakeFiles/uvs_storage.dir/log_file.cpp.o.d"
  "/root/repo/src/storage/pfs.cpp" "src/storage/CMakeFiles/uvs_storage.dir/pfs.cpp.o" "gcc" "src/storage/CMakeFiles/uvs_storage.dir/pfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/uvs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uvs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
