# Empty compiler generated dependencies file for uvs_storage.
# This may be replaced when dependencies are built.
