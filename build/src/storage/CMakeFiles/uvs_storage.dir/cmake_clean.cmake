file(REMOVE_RECURSE
  "CMakeFiles/uvs_storage.dir/layer_store.cpp.o"
  "CMakeFiles/uvs_storage.dir/layer_store.cpp.o.d"
  "CMakeFiles/uvs_storage.dir/log_file.cpp.o"
  "CMakeFiles/uvs_storage.dir/log_file.cpp.o.d"
  "CMakeFiles/uvs_storage.dir/pfs.cpp.o"
  "CMakeFiles/uvs_storage.dir/pfs.cpp.o.d"
  "libuvs_storage.a"
  "libuvs_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvs_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
