file(REMOVE_RECURSE
  "CMakeFiles/uvs_workload.dir/bdcats.cpp.o"
  "CMakeFiles/uvs_workload.dir/bdcats.cpp.o.d"
  "CMakeFiles/uvs_workload.dir/hdf_micro.cpp.o"
  "CMakeFiles/uvs_workload.dir/hdf_micro.cpp.o.d"
  "CMakeFiles/uvs_workload.dir/scenario.cpp.o"
  "CMakeFiles/uvs_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/uvs_workload.dir/vpic.cpp.o"
  "CMakeFiles/uvs_workload.dir/vpic.cpp.o.d"
  "libuvs_workload.a"
  "libuvs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
