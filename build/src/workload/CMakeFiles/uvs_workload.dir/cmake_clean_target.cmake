file(REMOVE_RECURSE
  "libuvs_workload.a"
)
