# Empty dependencies file for uvs_workload.
# This may be replaced when dependencies are built.
