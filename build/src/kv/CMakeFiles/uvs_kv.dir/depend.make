# Empty dependencies file for uvs_kv.
# This may be replaced when dependencies are built.
