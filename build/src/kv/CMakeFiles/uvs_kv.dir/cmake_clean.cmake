file(REMOVE_RECURSE
  "CMakeFiles/uvs_kv.dir/range_partitioner.cpp.o"
  "CMakeFiles/uvs_kv.dir/range_partitioner.cpp.o.d"
  "libuvs_kv.a"
  "libuvs_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvs_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
