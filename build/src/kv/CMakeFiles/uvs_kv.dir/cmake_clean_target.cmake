file(REMOVE_RECURSE
  "libuvs_kv.a"
)
