
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmpi/collective.cpp" "src/vmpi/CMakeFiles/uvs_vmpi.dir/collective.cpp.o" "gcc" "src/vmpi/CMakeFiles/uvs_vmpi.dir/collective.cpp.o.d"
  "/root/repo/src/vmpi/comm.cpp" "src/vmpi/CMakeFiles/uvs_vmpi.dir/comm.cpp.o" "gcc" "src/vmpi/CMakeFiles/uvs_vmpi.dir/comm.cpp.o.d"
  "/root/repo/src/vmpi/file.cpp" "src/vmpi/CMakeFiles/uvs_vmpi.dir/file.cpp.o" "gcc" "src/vmpi/CMakeFiles/uvs_vmpi.dir/file.cpp.o.d"
  "/root/repo/src/vmpi/runtime.cpp" "src/vmpi/CMakeFiles/uvs_vmpi.dir/runtime.cpp.o" "gcc" "src/vmpi/CMakeFiles/uvs_vmpi.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/uvs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/uvs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uvs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
