file(REMOVE_RECURSE
  "CMakeFiles/uvs_vmpi.dir/collective.cpp.o"
  "CMakeFiles/uvs_vmpi.dir/collective.cpp.o.d"
  "CMakeFiles/uvs_vmpi.dir/comm.cpp.o"
  "CMakeFiles/uvs_vmpi.dir/comm.cpp.o.d"
  "CMakeFiles/uvs_vmpi.dir/file.cpp.o"
  "CMakeFiles/uvs_vmpi.dir/file.cpp.o.d"
  "CMakeFiles/uvs_vmpi.dir/runtime.cpp.o"
  "CMakeFiles/uvs_vmpi.dir/runtime.cpp.o.d"
  "libuvs_vmpi.a"
  "libuvs_vmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvs_vmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
