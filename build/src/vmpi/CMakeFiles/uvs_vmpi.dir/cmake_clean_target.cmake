file(REMOVE_RECURSE
  "libuvs_vmpi.a"
)
