# Empty compiler generated dependencies file for uvs_vmpi.
# This may be replaced when dependencies are built.
