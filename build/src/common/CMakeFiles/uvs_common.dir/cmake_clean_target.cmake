file(REMOVE_RECURSE
  "libuvs_common.a"
)
