file(REMOVE_RECURSE
  "CMakeFiles/uvs_common.dir/log.cpp.o"
  "CMakeFiles/uvs_common.dir/log.cpp.o.d"
  "CMakeFiles/uvs_common.dir/stats.cpp.o"
  "CMakeFiles/uvs_common.dir/stats.cpp.o.d"
  "CMakeFiles/uvs_common.dir/strings.cpp.o"
  "CMakeFiles/uvs_common.dir/strings.cpp.o.d"
  "CMakeFiles/uvs_common.dir/table.cpp.o"
  "CMakeFiles/uvs_common.dir/table.cpp.o.d"
  "libuvs_common.a"
  "libuvs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
