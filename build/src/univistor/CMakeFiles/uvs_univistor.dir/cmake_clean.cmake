file(REMOVE_RECURSE
  "CMakeFiles/uvs_univistor.dir/driver.cpp.o"
  "CMakeFiles/uvs_univistor.dir/driver.cpp.o.d"
  "CMakeFiles/uvs_univistor.dir/system.cpp.o"
  "CMakeFiles/uvs_univistor.dir/system.cpp.o.d"
  "libuvs_univistor.a"
  "libuvs_univistor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvs_univistor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
