# Empty compiler generated dependencies file for uvs_univistor.
# This may be replaced when dependencies are built.
