file(REMOVE_RECURSE
  "libuvs_univistor.a"
)
