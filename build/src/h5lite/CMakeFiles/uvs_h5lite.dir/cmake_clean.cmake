file(REMOVE_RECURSE
  "CMakeFiles/uvs_h5lite.dir/h5file.cpp.o"
  "CMakeFiles/uvs_h5lite.dir/h5file.cpp.o.d"
  "libuvs_h5lite.a"
  "libuvs_h5lite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvs_h5lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
