# Empty dependencies file for uvs_h5lite.
# This may be replaced when dependencies are built.
