file(REMOVE_RECURSE
  "libuvs_h5lite.a"
)
