file(REMOVE_RECURSE
  "libuvs_meta.a"
)
