# Empty compiler generated dependencies file for uvs_meta.
# This may be replaced when dependencies are built.
