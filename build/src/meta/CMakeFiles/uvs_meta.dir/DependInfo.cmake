
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meta/record_index.cpp" "src/meta/CMakeFiles/uvs_meta.dir/record_index.cpp.o" "gcc" "src/meta/CMakeFiles/uvs_meta.dir/record_index.cpp.o.d"
  "/root/repo/src/meta/service.cpp" "src/meta/CMakeFiles/uvs_meta.dir/service.cpp.o" "gcc" "src/meta/CMakeFiles/uvs_meta.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kv/CMakeFiles/uvs_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/uvs_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uvs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/uvs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uvs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
