file(REMOVE_RECURSE
  "CMakeFiles/uvs_meta.dir/record_index.cpp.o"
  "CMakeFiles/uvs_meta.dir/record_index.cpp.o.d"
  "CMakeFiles/uvs_meta.dir/service.cpp.o"
  "CMakeFiles/uvs_meta.dir/service.cpp.o.d"
  "libuvs_meta.a"
  "libuvs_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvs_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
